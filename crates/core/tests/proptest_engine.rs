//! Property tests for the BayesLSH engines: structural invariants that
//! must hold for every corpus, threshold and parameterization.

use bayeslsh_core::{
    bayes_verify, bayes_verify_lite, BayesLshConfig, CosineModel, JaccardModel, LiteConfig,
};
use bayeslsh_lsh::{BitSignatures, IntSignatures, MinHasher, SrpHasher};
use bayeslsh_numeric::Xoshiro256;
use bayeslsh_sparse::{cosine, Dataset, SparseVector};
use proptest::prelude::*;

fn corpus(seed: u64, n: usize) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(500);
    let n_clusters = (n / 5).max(1);
    let centers: Vec<Vec<(u32, f32)>> = (0..n_clusters)
        .map(|_| {
            (0..12)
                .map(|_| (rng.next_below(500) as u32, (rng.next_f64() + 0.2) as f32))
                .collect()
        })
        .collect();
    for i in 0..n {
        let mut pairs = centers[i % n_clusters].clone();
        for p in pairs.iter_mut() {
            if rng.next_bool(0.3) {
                *p = (rng.next_below(500) as u32, (rng.next_f64() + 0.2) as f32);
            }
        }
        d.push(SparseVector::from_pairs(pairs));
    }
    d
}

fn all_pairs_of(n: u32) -> Vec<(u32, u32)> {
    (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lite emits only true positives (exact verification) and its
    /// bookkeeping always balances.
    #[test]
    fn lite_soundness_cosine(
        seed in 0u64..10_000,
        n in 8usize..30,
        t in 0.4f64..0.95,
        h_chunks in 1u32..6,
    ) {
        let data = corpus(seed, n);
        let cands = all_pairs_of(data.len() as u32);
        let cfg = LiteConfig { threshold: t, epsilon: 0.03, k: 32, h: 32 * h_chunks };
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), seed ^ 1), data.len());
        let (out, stats) =
            bayes_verify_lite(&data, &mut pool, &CosineModel::new(), &cands, &cfg, cosine);
        for &(a, b, s) in &out {
            prop_assert!(s >= t);
            prop_assert!((s - cosine(data.vector(a), data.vector(b))).abs() < 1e-12);
        }
        prop_assert_eq!(stats.input_pairs, cands.len() as u64);
        prop_assert_eq!(stats.exact_verifications, stats.input_pairs - stats.pruned);
        prop_assert!(stats.hash_comparisons <= stats.input_pairs * cfg.h as u64);
    }

    /// Full BayesLSH: bookkeeping balances, estimates stay in range, and
    /// the pruning curve is consistent with the counters.
    #[test]
    fn bayes_structural_invariants_jaccard(
        seed in 0u64..10_000,
        n in 8usize..30,
        t in 0.25f64..0.9,
    ) {
        let data = corpus(seed, n).binarized();
        let cands = all_pairs_of(data.len() as u32);
        let cfg = BayesLshConfig::jaccard(t);
        let mut pool = IntSignatures::new(MinHasher::new(seed ^ 2), data.len());
        let (out, stats) =
            bayes_verify(&data, &mut pool, &JaccardModel::uniform(), &cands, &cfg);
        prop_assert_eq!(stats.pruned + stats.accepted, stats.input_pairs);
        prop_assert_eq!(out.len() as u64, stats.accepted);
        for &(_, _, s) in &out {
            prop_assert!((0.0..=1.0).contains(&s), "estimate {s}");
        }
        let curve = stats.survivors_curve();
        prop_assert_eq!(curve.first().unwrap().1, stats.input_pairs);
        prop_assert_eq!(curve.last().unwrap().1, stats.input_pairs - stats.pruned);
        let pruned_from_curve: u64 = stats.pruned_at_chunk.iter().sum();
        prop_assert_eq!(pruned_from_curve, stats.pruned);
    }

    /// Identical vectors are never pruned at any threshold (their
    /// posterior tail only grows), and their estimates sit near 1.
    #[test]
    fn identical_pairs_survive(
        seed in 0u64..10_000,
        t in 0.3f64..0.95,
    ) {
        let mut data = Dataset::new(200);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let v = SparseVector::from_pairs(
            (0..15).map(|_| (rng.next_below(200) as u32, (rng.next_f64() + 0.2) as f32)),
        );
        data.push(v.clone());
        data.push(v);
        let cfg = BayesLshConfig::cosine(t);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), seed ^ 3), data.len());
        let (out, stats) =
            bayes_verify(&data, &mut pool, &CosineModel::new(), &[(0, 1)], &cfg);
        prop_assert_eq!(stats.pruned, 0);
        prop_assert_eq!(out.len(), 1);
        prop_assert!(out[0].2 > 0.95, "estimate {}", out[0].2);
    }

    /// The recall contract, in its checkable form: pairs whose true
    /// similarity sits comfortably above the threshold have posterior tails
    /// that essentially never dip below epsilon, so they are essentially
    /// never pruned. (Pairs *at* the threshold may legitimately be pruned
    /// with probability that grows with epsilon — the paper's own Table 5
    /// shows recall falling as epsilon rises.)
    #[test]
    fn clearly_similar_pairs_survive_pruning(
        seed in 0u64..10_000,
        eps in 0.01f64..0.15,
    ) {
        let data = corpus(seed, 30);
        let t = 0.7;
        let margin = 0.12;
        let cands = all_pairs_of(data.len() as u32);
        let cfg = BayesLshConfig { epsilon: eps, ..BayesLshConfig::cosine(t) };
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), seed ^ 4), data.len());
        let (out, _) = bayes_verify(&data, &mut pool, &CosineModel::new(), &cands, &cfg);
        let keys: std::collections::HashSet<(u32, u32)> =
            out.iter().map(|&(a, b, _)| (a, b)).collect();
        let mut clear = 0usize;
        let mut found = 0usize;
        for &(a, b) in &cands {
            if cosine(data.vector(a), data.vector(b)) >= t + margin {
                clear += 1;
                if keys.contains(&(a, b)) {
                    found += 1;
                }
            }
        }
        if clear >= 5 {
            let recall = found as f64 / clear as f64;
            prop_assert!(
                recall >= 0.95,
                "eps={eps}: clear-margin recall {recall} ({found}/{clear})"
            );
        }
    }
}
