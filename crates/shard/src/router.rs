//! The scatter-gather serving router with hot-swap reload.

use std::collections::BinaryHeap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use bayeslsh_core::{
    merge_query_outputs, CandidateScan, CompositionOutput, KnnParams, KnnStats, QueryOutput,
    SearchError, Searcher, SearcherBuilder, TopKOutput,
};
use bayeslsh_numeric::{fnv1a_checksum, Parallelism};
use bayeslsh_sparse::{Dataset, SparseVector};

use crate::error::ShardError;
use crate::manifest::{config_fingerprint, ShardManifest};

/// When a generation's shard snapshots are loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadPolicy {
    /// Load (and fully verify) every shard at open/reload time, so a
    /// generation that starts serving is proven whole — the right
    /// default for a standing service.
    #[default]
    Eager,
    /// Load each shard on first touch. Opening is nearly free, but
    /// snapshot corruption surfaces at query time.
    Lazy,
}

/// The global-id ↔ (shard, local-id) correspondence, replayed from the
/// manifest's partition function and extended by inserts.
#[derive(Debug)]
struct IdMap {
    /// `locate[global] = (shard, local id within that shard)`.
    locate: Vec<(u32, u32)>,
    /// `globals[shard][local] = global id` — the inverse, per shard.
    globals: Vec<Vec<u32>>,
}

impl IdMap {
    /// Replay `manifest.partition` over `0..n_total` and cross-check
    /// the resulting per-shard sizes against the manifest entries — a
    /// manifest whose recorded counts disagree with its own partition
    /// function is corrupt, not servable.
    fn replay(manifest: &ShardManifest) -> Result<Self, ShardError> {
        let n_shards = manifest.shard_count();
        let mut locate = Vec::with_capacity(manifest.n_total as usize);
        let mut globals: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        for global in 0..manifest.n_total {
            let s = manifest.partition.shard_of(global as u32, n_shards);
            locate.push((s as u32, globals[s].len() as u32));
            globals[s].push(global as u32);
        }
        for (s, entry) in manifest.shards.iter().enumerate() {
            if globals[s].len() as u64 != entry.n_vectors {
                return Err(ShardError::CorruptManifest {
                    detail: format!(
                        "partition replay assigns {} vectors to shard {s}, manifest says {}",
                        globals[s].len(),
                        entry.n_vectors
                    ),
                });
            }
        }
        Ok(IdMap { locate, globals })
    }
}

/// One immutable *generation* of the serving set: a verified manifest
/// plus its shard slots. Queries clone the generation's `Arc` and work
/// against it for their whole lifetime, so a concurrent
/// [`ShardedSearcher::reload`] never changes the ground under them.
#[derive(Debug)]
pub struct Generation {
    ordinal: u64,
    manifest: ShardManifest,
    dir: PathBuf,
    parallelism: Parallelism,
    /// Lazily-populated shard searchers, in shard order.
    slots: Vec<Mutex<Option<Searcher>>>,
    /// Lock order: `ids` → `merged` → `slots` (ascending).
    ids: RwLock<IdMap>,
    /// The merged single-index searcher backing [`ShardedSearcher::all_pairs`]
    /// (see there for why the batch join is served this way), built on
    /// first use and kept in sync by inserts.
    merged: Mutex<Option<Searcher>>,
}

impl Generation {
    fn open(
        manifest_path: &Path,
        parallelism: Parallelism,
        policy: LoadPolicy,
        ordinal: u64,
    ) -> Result<Self, ShardError> {
        let manifest = ShardManifest::load(manifest_path)?;
        let ids = IdMap::replay(&manifest)?;
        let dir = manifest_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let generation = Generation {
            ordinal,
            slots: (0..manifest.shard_count())
                .map(|_| Mutex::new(None))
                .collect(),
            manifest,
            dir,
            parallelism,
            ids: RwLock::new(ids),
            merged: Mutex::new(None),
        };
        if policy == LoadPolicy::Eager {
            for s in 0..generation.manifest.shard_count() {
                drop(generation.slot(s)?);
            }
        }
        Ok(generation)
    }

    /// This generation's ordinal (1 for the initially opened set,
    /// +1 per successful reload).
    pub fn ordinal(&self) -> u64 {
        self.ordinal
    }

    /// The verified manifest this generation serves.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// How many shard slots currently hold a loaded searcher.
    pub fn shards_loaded(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.lock().expect("shard slot poisoned").is_some())
            .count()
    }

    /// Lock shard `s`'s slot, loading and verifying the snapshot first
    /// if the slot is still empty.
    fn slot(&self, s: usize) -> Result<MutexGuard<'_, Option<Searcher>>, ShardError> {
        let mut slot = self.slots[s].lock().expect("shard slot poisoned");
        if slot.is_none() {
            *slot = Some(self.load_shard(s)?);
        }
        Ok(slot)
    }

    /// Read shard `s`'s snapshot and run the full verification ladder:
    /// file present → whole-file checksum matches the manifest →
    /// snapshot parses → config fingerprint matches the manifest →
    /// vector count matches the manifest.
    fn load_shard(&self, s: usize) -> Result<Searcher, ShardError> {
        let entry = &self.manifest.shards[s];
        let path = self.dir.join(&entry.file);
        let bytes = std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                ShardError::MissingShard {
                    shard: s,
                    path: path.clone(),
                }
            } else {
                ShardError::Io(e)
            }
        })?;
        let found = fnv1a_checksum(&bytes);
        if found != entry.checksum {
            return Err(ShardError::ShardChecksum {
                shard: s,
                expected: entry.checksum,
                found,
            });
        }
        let searcher = Searcher::load_with_parallelism(&bytes[..], self.parallelism)
            .map_err(|source| ShardError::Snapshot { shard: s, source })?;
        let fp = config_fingerprint(
            searcher.config(),
            searcher.composition(),
            searcher.hash_mode(),
        );
        if fp != self.manifest.config_fingerprint {
            return Err(ShardError::ConfigFingerprint {
                shard: s,
                expected: self.manifest.config_fingerprint,
                found: fp,
                diff: bayeslsh_core::ConfigDiff::new(
                    "config_fingerprint",
                    format_args!("{:#018x}", self.manifest.config_fingerprint),
                    format_args!("{fp:#018x}"),
                ),
            });
        }
        if searcher.len() as u64 != entry.n_vectors {
            return Err(ShardError::CorruptManifest {
                detail: format!(
                    "shard {s} snapshot holds {} vectors, manifest says {}",
                    searcher.len(),
                    entry.n_vectors
                ),
            });
        }
        Ok(searcher)
    }

    /// Run `f` against shard `s`'s searcher (loading it if needed).
    fn with_shard<T>(&self, s: usize, f: impl FnOnce(&mut Searcher) -> T) -> Result<T, ShardError> {
        let mut slot = self.slot(s)?;
        Ok(f(slot.as_mut().expect("slot was just filled")))
    }

    /// Read shard `s`'s searcher (loading and verifying it first if
    /// needed) — the hook re-shard and snapshot-rewrite jobs use to save
    /// a served shard (e.g. after [`ShardedSearcher::compact`]) back out
    /// through [`Searcher::save`].
    ///
    /// # Errors
    ///
    /// Shard load failures, as for any lazy first touch.
    pub fn with_searcher<T>(
        &self,
        s: usize,
        f: impl FnOnce(&Searcher) -> T,
    ) -> Result<T, ShardError> {
        self.with_shard(s, |sr| f(sr))
    }
}

/// Exact ordering twin of the single-index top-k heap item
/// (`core::knn::HeapItem`): min-heap on similarity, ties broken toward
/// the *larger* id so the smaller id wins the final descending sort.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem(f64, u32);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// A sharded similarity searcher: opens a [`ShardManifest`], loads the
/// shard snapshots it names, and serves the whole [`Searcher`] query
/// surface by scatter-gather with a deterministic cross-shard merge.
///
/// ## The bit-identity contract
///
/// For any shard count and any thread budget,
/// [`query`](ShardedSearcher::query), [`top_k`](ShardedSearcher::top_k)
/// and [`all_pairs`](ShardedSearcher::all_pairs) return results —
/// pairs, similarities, statistics, all in *global* ids — bit-identical
/// to a single [`Searcher`] built over the unpartitioned corpus. Three
/// facts make this possible:
///
/// * every shard keeps the full feature space and the same config seed,
///   so signatures (and hence band keys, agreement counts, and exact
///   similarities) are identical to the single-index ones;
/// * threshold-query verdicts are per-candidate and order-independent,
///   so per-shard outputs merge by id remap + re-sort;
/// * top-k's rising-threshold scan *is* order-dependent, so the router
///   reconstructs the single index's candidate emission order — sort by
///   (first matching band, global id) — and replays the sequential scan
///   itself, one candidate at a time against the owning shard.
///
/// ## Hot swap
///
/// All serving state lives in a generation behind an `Arc`: queries
/// clone it, [`reload`](ShardedSearcher::reload) builds and verifies a
/// fresh generation from disk and atomically swaps the `Arc` — in-flight
/// queries finish on the old generation, new ones see the new one, and
/// a failed reload leaves the current generation serving untouched.
#[derive(Debug)]
pub struct ShardedSearcher {
    manifest_path: PathBuf,
    parallelism: Parallelism,
    policy: LoadPolicy,
    current: RwLock<Arc<Generation>>,
}

impl ShardedSearcher {
    /// Open the shard set described by the manifest at `path` with
    /// [`Parallelism::Auto`] and [`LoadPolicy::Eager`].
    pub fn open(path: &Path) -> Result<Self, ShardError> {
        Self::open_with(path, Parallelism::Auto, LoadPolicy::Eager)
    }

    /// Open with an explicit thread budget and load policy. The budget
    /// applies to every per-shard searcher (resolved at load) and to
    /// the merged batch-join searcher; results never depend on it.
    pub fn open_with(
        path: &Path,
        parallelism: Parallelism,
        policy: LoadPolicy,
    ) -> Result<Self, ShardError> {
        let generation = Generation::open(path, parallelism, policy, 1)?;
        Ok(ShardedSearcher {
            manifest_path: path.to_path_buf(),
            parallelism,
            policy,
            current: RwLock::new(Arc::new(generation)),
        })
    }

    /// The generation currently serving. Queries taken through the
    /// returned `Arc` keep working even across a concurrent
    /// [`reload`](ShardedSearcher::reload) — this is also the test hook
    /// for reload-mid-sweep scenarios.
    pub fn generation(&self) -> Arc<Generation> {
        self.current
            .read()
            .expect("generation lock poisoned")
            .clone()
    }

    /// Re-open the manifest from disk as a new generation and swap it
    /// in atomically. On any error the current generation keeps serving
    /// (the swap happens only after the new set is fully verified —
    /// and, under [`LoadPolicy::Eager`], fully loaded). Returns the new
    /// generation ordinal.
    pub fn reload(&self) -> Result<u64, ShardError> {
        let next = self.generation().ordinal() + 1;
        let fresh = Generation::open(&self.manifest_path, self.parallelism, self.policy, next)?;
        *self.current.write().expect("generation lock poisoned") = Arc::new(fresh);
        Ok(next)
    }

    /// Number of shards in the current generation.
    pub fn shard_count(&self) -> usize {
        self.generation().manifest.shard_count()
    }

    /// Total corpus vectors across shards (including inserts into the
    /// current generation).
    pub fn len(&self) -> usize {
        self.generation()
            .ids
            .read()
            .expect("id map poisoned")
            .locate
            .len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Threshold point query, scatter-gathered: each shard answers
    /// [`Searcher::query`] independently, shard-local ids are remapped
    /// to global ids, and the outputs merge under the single index's
    /// sort order. Verdicts on the query path are per-candidate and the
    /// per-shard candidate sets partition the single index's, so the
    /// merged output (neighbors *and* statistics) is bit-identical.
    ///
    /// # Errors
    ///
    /// Exactly [`Searcher::query`]'s, wrapped in
    /// [`ShardError::Search`]; plus shard load failures under
    /// [`LoadPolicy::Lazy`].
    pub fn query(&self, q: &SparseVector, threshold: f64) -> Result<QueryOutput, ShardError> {
        let generation = self.generation();
        let ids = generation.ids.read().expect("id map poisoned");
        let mut parts = Vec::with_capacity(generation.manifest.shard_count());
        for s in 0..generation.manifest.shard_count() {
            let mut out = generation.with_shard(s, |sr| sr.query(q, threshold))??;
            let globals = &ids.globals[s];
            out.remap_ids(|local| globals[local as usize]);
            parts.push(out);
        }
        Ok(merge_query_outputs(parts))
    }

    /// Top-`k` query, scatter-gathered. The data-parallel phases —
    /// query hashing, index probing, first-chunk agreement counting —
    /// run per shard; the order-dependent rising-threshold scan then
    /// runs at the router, over the merged candidate list in the exact
    /// order a single index would emit it (ascending first matching
    /// band, then ascending global id), delegating each candidate's
    /// chunked scan to its owning shard. Output and statistics are
    /// bit-identical to [`Searcher::top_k`].
    ///
    /// # Errors
    ///
    /// Exactly [`Searcher::top_k`]'s, wrapped in [`ShardError::Search`];
    /// plus shard load failures under [`LoadPolicy::Lazy`].
    pub fn top_k(
        &self,
        q: &SparseVector,
        k: usize,
        params: &KnnParams,
    ) -> Result<TopKOutput, ShardError> {
        // Mirror Searcher::top_k's parameter validation verbatim so a
        // router request fails with the identical error.
        if k == 0 {
            return Err(SearchError::invalid("k", "need at least one neighbour").into());
        }
        if !(params.epsilon > 0.0 && params.epsilon < 1.0) {
            return Err(SearchError::invalid(
                "epsilon",
                format!("must lie in (0, 1), got {}", params.epsilon),
            )
            .into());
        }
        if params.chunk < 1 || params.h < params.chunk {
            return Err(SearchError::invalid(
                "chunk",
                format!(
                    "need h >= chunk >= 1, got chunk {} h {}",
                    params.chunk, params.h
                ),
            )
            .into());
        }
        let generation = self.generation();
        let ids = generation.ids.read().expect("id map poisoned");
        let n_shards = generation.manifest.shard_count();
        generation.with_shard(0, |sr| sr.validate_query_vector(q))??;
        let mut stats = KnnStats::default();
        if q.is_empty() || ids.locate.is_empty() {
            return Ok(TopKOutput {
                neighbors: Vec::new(),
                stats,
            });
        }

        // The banding plan and scan depth depend only on the config,
        // which all shards share; the signature is a pure function of
        // (config seed, dim, query), so one shard can hash for all.
        let sig = generation.with_shard(0, |sr| {
            let banding = sr.banding_plan().params;
            let max_chunks = params.h / params.chunk;
            let depth = banding.total_hashes().max(max_chunks * params.chunk);
            sr.hash_query_signature(q, depth)
        })?;

        // Scatter: probe every shard and pay its first chunk up front,
        // annotating candidates as (first band, global id, shard, local
        // id, first-chunk agreements).
        let mut candidates: Vec<(u32, u32, u32, u32, u32)> = Vec::new();
        for s in 0..n_shards {
            let globals = &ids.globals[s];
            let (probed, first) = generation.with_shard(s, |sr| {
                let probed = sr.probe_first_bands(&sig);
                let locals: Vec<u32> = probed.iter().map(|&(local, _)| local).collect();
                let first = sr.first_chunk_agreements(&sig, &locals, params.chunk);
                (probed, first)
            })?;
            for (&(local, band), &m) in probed.iter().zip(&first) {
                candidates.push((band, globals[local as usize], s as u32, local, m));
            }
        }
        // Gather: restore the single index's emission order — bands in
        // probe order, each bucket in ascending (global) id order.
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        stats.candidates = candidates.len() as u64;

        // Replay the sequential rising-threshold scan. Each candidate's
        // verdict is a pure function of (signature, candidate, pruning
        // threshold captured before its scan), so delegating scans to
        // the owning shards reproduces the single index bit for bit.
        let mut heap: BinaryHeap<std::cmp::Reverse<HeapItem>> = BinaryHeap::with_capacity(k + 1);
        let mut kth_best = params.floor;
        for &(_, global, s, local, first_m) in &candidates {
            let prune_below = kth_best;
            let scan = generation.with_shard(s as usize, |sr| {
                sr.scan_top_k_candidate(q, &sig, local, first_m, params, prune_below)
            })?;
            match scan {
                CandidateScan::Pruned { comparisons } => {
                    stats.hash_comparisons += comparisons as u64;
                    stats.pruned += 1;
                }
                CandidateScan::Survivor {
                    comparisons,
                    similarity,
                } => {
                    stats.hash_comparisons += comparisons as u64;
                    stats.exact += 1;
                    if heap.len() < k {
                        heap.push(std::cmp::Reverse(HeapItem(similarity, global)));
                    } else if similarity > heap.peek().expect("heap is full").0 .0 {
                        heap.pop();
                        heap.push(std::cmp::Reverse(HeapItem(similarity, global)));
                    }
                    if heap.len() == k {
                        kth_best = heap.peek().expect("heap is full").0 .0.max(params.floor);
                    }
                }
            }
        }
        let mut neighbors: Vec<(u32, f64)> = heap
            .into_iter()
            .map(|std::cmp::Reverse(HeapItem(s, id))| (id, s))
            .collect();
        neighbors.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(TopKOutput { neighbors, stats })
    }

    /// The batch all-pairs join over the whole sharded corpus, in
    /// global ids.
    ///
    /// Unlike the point queries, the paper's batch joins are
    /// corpus-*global* computations — AllPairs and PPJoin+ scan a
    /// shared inverted index, and the fitted Jaccard prior samples the
    /// global candidate list — so a true per-shard scatter cannot
    /// reproduce them bit-identically. The router therefore reassembles
    /// the global corpus (in global-id order, which the id map makes
    /// exact) into one merged [`Searcher`], built once per generation
    /// and kept in sync by [`insert`](ShardedSearcher::insert); the
    /// join is bit-identical to the single index *by construction*, and
    /// repeated calls pay only the join.
    ///
    /// # Errors
    ///
    /// As [`Searcher::all_pairs`], wrapped in [`ShardError::Search`];
    /// plus shard load failures.
    pub fn all_pairs(&self) -> Result<CompositionOutput, ShardError> {
        let generation = self.generation();
        let ids = generation.ids.read().expect("id map poisoned");
        let mut merged = generation.merged.lock().expect("merged searcher poisoned");
        if merged.is_none() {
            let n_shards = generation.manifest.shard_count();
            let mut shard_data = Vec::with_capacity(n_shards);
            let mut recipe = None;
            for s in 0..n_shards {
                let (data, cfg, composition, mode) = generation.with_shard(s, |sr| {
                    (
                        sr.data().clone(),
                        *sr.config(),
                        sr.composition(),
                        sr.hash_mode(),
                    )
                })?;
                shard_data.push(data);
                recipe.get_or_insert((cfg, composition, mode));
            }
            let (cfg, composition, mode) = recipe.expect("manifests have at least one shard");
            let mut data = Dataset::new(generation.manifest.dim);
            for &(s, local) in &ids.locate {
                data.push(shard_data[s as usize].vector(local).clone());
            }
            let searcher = SearcherBuilder::new(cfg)
                .composition(composition)
                .hash_mode(mode)
                .parallelism(self.parallelism)
                .build(data)
                .map_err(ShardError::Search)?;
            *merged = Some(searcher);
        }
        merged
            .as_mut()
            .expect("merged searcher was just built")
            .all_pairs()
            .map_err(ShardError::Search)
    }

    /// Append a vector to the sharded corpus: the manifest's partition
    /// function assigns the next global id to its shard, the vector is
    /// inserted there (extending that shard's pool and index in place,
    /// exactly as [`Searcher::insert`] would on the single index), and
    /// the id map — plus the merged batch-join searcher, if already
    /// built — is updated to match. Returns the new global id.
    ///
    /// Inserts land in the *current generation* only; a
    /// [`reload`](ShardedSearcher::reload) serves what is on disk.
    ///
    /// # Errors
    ///
    /// As [`Searcher::insert`], wrapped in [`ShardError::Search`]; plus
    /// shard load failures.
    pub fn insert(&self, v: SparseVector) -> Result<u32, ShardError> {
        let generation = self.generation();
        let mut ids = generation.ids.write().expect("id map poisoned");
        let n_shards = generation.manifest.shard_count();
        let global = ids.locate.len() as u32;
        let s = generation.manifest.partition.shard_of(global, n_shards);
        let mut merged = generation.merged.lock().expect("merged searcher poisoned");
        let local = generation.with_shard(s, |sr| sr.insert(v.clone()))??;
        debug_assert_eq!(local as usize, ids.globals[s].len());
        ids.locate.push((s as u32, local));
        ids.globals[s].push(global);
        if let Some(m) = merged.as_mut() {
            m.insert(v).map_err(ShardError::Search)?;
        }
        Ok(global)
    }

    /// Tombstone the vector with `global` id: the id map routes it to its
    /// owning shard, which unlinks it exactly as [`Searcher::remove`] on
    /// the single index would; the merged batch-join searcher, if built,
    /// tombstones the same global id so [`all_pairs`] stays in sync.
    /// Returns `Ok(false)` when the id was already removed.
    ///
    /// Like inserts, removals land in the *current generation* only.
    ///
    /// [`all_pairs`]: ShardedSearcher::all_pairs
    ///
    /// # Errors
    ///
    /// As [`Searcher::remove`] (unknown id), wrapped in
    /// [`ShardError::Search`]; plus shard load failures.
    pub fn remove(&self, global: u32) -> Result<bool, ShardError> {
        let generation = self.generation();
        let ids = generation.ids.read().expect("id map poisoned");
        let Some(&(s, local)) = ids.locate.get(global as usize) else {
            return Err(SearchError::invalid(
                "id",
                format!(
                    "no such vector: {global} (corpus holds {})",
                    ids.locate.len()
                ),
            )
            .into());
        };
        let mut merged = generation.merged.lock().expect("merged searcher poisoned");
        let removed = generation.with_shard(s as usize, |sr| sr.remove(local))??;
        if removed {
            if let Some(m) = merged.as_mut() {
                m.remove(global).map_err(ShardError::Search)?;
            }
        }
        Ok(removed)
    }

    /// Tombstoned vectors not yet reclaimed, summed over loaded shards.
    pub fn pending_removals(&self) -> usize {
        let generation = self.generation();
        generation
            .slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("shard slot poisoned")
                    .as_ref()
                    .map_or(0, Searcher::pending_removals)
            })
            .sum()
    }

    /// Run [`Searcher::compact`] on every shard carrying tombstones (and
    /// on the merged batch-join searcher, if built), returning the number
    /// of vectors reclaimed across shards. Global ids are stable across
    /// compaction — removed slots keep their positions as empty vectors —
    /// so the id map is untouched and shard snapshots saved afterwards
    /// reload under the same manifest partition.
    pub fn compact(&self) -> usize {
        let generation = self.generation();
        let _ids = generation.ids.read().expect("id map poisoned");
        let mut merged = generation.merged.lock().expect("merged searcher poisoned");
        let mut reclaimed = 0;
        for slot in &generation.slots {
            // A never-loaded slot has no tombstones: removals load the
            // owning shard, so only loaded searchers can need compaction.
            let mut slot = slot.lock().expect("shard slot poisoned");
            if let Some(sr) = slot.as_mut() {
                if sr.pending_removals() > 0 {
                    reclaimed += sr.compact();
                }
            }
        }
        if let Some(m) = merged.as_mut() {
            if m.pending_removals() > 0 {
                m.compact();
            }
        }
        reclaimed
    }
}
