//! Sharded multi-index serving for the BayesLSH reproduction: one
//! offline builder, many cheap serving shards, one deterministic
//! router.
//!
//! BayesLSH verification (Satuluri & Parthasarathy, VLDB 2012) is
//! embarrassingly parallel across disjoint corpus partitions, and
//! sharding the LSH index cuts per-node memory while making
//! scatter-gather the natural query plan (cf. Bahmani et al.,
//! *Efficient Distributed LSH*). This crate is that architecture step —
//! from build-once/query-many to build-anywhere/serve-everywhere —
//! built on two existing primitives: the v1 index snapshot format and
//! the workspace's parallel-equals-serial merge discipline.
//!
//! * [`ShardBuilder`] — deterministically partitions a `Dataset` with a
//!   replayable [`PartitionFn`], builds every shard's `Searcher` in
//!   parallel (serially *inside* each shard, so snapshot bytes never
//!   depend on the building host), and writes independent v1 snapshots
//!   plus a checksummed, versioned [`ShardManifest`].
//! * [`ShardedSearcher`] — opens a manifest, loads shards eagerly or
//!   lazily ([`LoadPolicy`]), and serves `all_pairs()`, threshold
//!   `query()`, `top_k()`, and `insert()` with results bit-identical to
//!   a single `Searcher` over the unpartitioned corpus — at any shard
//!   count × any thread budget. `reload()` hot-swaps a freshly
//!   verified generation under in-flight queries.
//! * [`ShardError`] — the typed failure vocabulary: bad magic,
//!   unsupported version, corrupt manifest, shard checksum mismatch,
//!   config-fingerprint drift, missing shard file, snapshot and search
//!   errors. Corruption is always a typed error, never a panic or a
//!   silent mis-merge.
//!
//! The equivalence contract is pinned by `tests/shard_equivalence.rs`
//! (all eight algorithm compositions × shard counts × thread budgets)
//! and a committed golden manifest fixture.

pub mod builder;
pub mod error;
pub mod manifest;
pub mod router;

pub use builder::ShardBuilder;
pub use error::ShardError;
pub use manifest::{
    config_fingerprint, PartitionFn, ShardEntry, ShardManifest, MANIFEST_FILE,
    MANIFEST_FORMAT_VERSION, MANIFEST_MAGIC,
};
pub use router::{Generation, LoadPolicy, ShardedSearcher};
