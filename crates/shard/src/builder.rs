//! The offline shard builder: one corpus in, N independent snapshots
//! plus a manifest out.

use std::path::Path;

use bayeslsh_core::{Algorithm, Composition, HashMode, PipelineConfig, Searcher, SearcherBuilder};
use bayeslsh_numeric::{fan_out, fnv1a_checksum, Parallelism};
use bayeslsh_sparse::Dataset;

use crate::error::ShardError;
use crate::manifest::{
    config_fingerprint, PartitionFn, ShardEntry, ShardManifest, MANIFEST_FILE,
    MANIFEST_FORMAT_VERSION,
};

/// Builds a sharded index set: deterministically partitions a
/// [`Dataset`], builds each shard's [`Searcher`] in parallel, and saves
/// them as independent v1 snapshots plus a checksummed
/// [`ShardManifest`].
///
/// Mirrors [`SearcherBuilder`]'s knobs (algorithm/composition, hash
/// mode, parallelism) and adds the sharding ones (shard count,
/// partition policy). Two determinism guarantees:
///
/// * **Partitioning is replayable**: the [`PartitionFn`] and its seed
///   go into the manifest, so any router reconstructs the exact
///   global-id ↔ (shard, local-id) correspondence.
/// * **Snapshot bytes are host-independent**: each shard's searcher is
///   built with `Parallelism::serial()` *inside* the cross-shard
///   fan-out, so the bytes on disk never depend on the building
///   machine's thread count (the builder's parallelism budget governs
///   only how many shards build concurrently). Routers re-resolve their
///   own budget at load time; results are bit-identical either way.
#[derive(Debug, Clone)]
pub struct ShardBuilder {
    cfg: PipelineConfig,
    composition: Composition,
    mode: HashMode,
    n_shards: usize,
    partition: PartitionFn,
}

impl ShardBuilder {
    /// A builder with the given pipeline configuration, defaulting to
    /// the paper's flagship composition (LSH banding × BayesLSH), eager
    /// hashing, one shard, and round-robin partitioning.
    pub fn new(cfg: PipelineConfig) -> Self {
        Self {
            cfg,
            composition: Algorithm::LshBayesLsh.composition(),
            mode: HashMode::Eager,
            n_shards: 1,
            partition: PartitionFn::RoundRobin,
        }
    }

    /// Use the composition named by one of the paper's eight algorithms.
    pub fn algorithm(mut self, algo: Algorithm) -> Self {
        self.composition = algo.composition();
        self
    }

    /// Use an arbitrary generator × verifier composition.
    pub fn composition(mut self, composition: Composition) -> Self {
        self.composition = composition;
        self
    }

    /// Choose when corpus signatures are hashed (default eager).
    pub fn hash_mode(mut self, mode: HashMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the cross-shard build budget (default [`Parallelism::Auto`]).
    /// Governs how many shards build concurrently — never the bytes
    /// produced.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Number of shards to split the corpus into (default 1).
    ///
    /// # Panics
    ///
    /// When `n` is zero.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one shard");
        self.n_shards = n;
        self
    }

    /// The global-id → shard assignment policy (default round-robin).
    pub fn partition(mut self, partition: PartitionFn) -> Self {
        self.partition = partition;
        self
    }

    /// Partition `data`, build every shard, and write
    /// `shard_NNNN.snap` files plus [`MANIFEST_FILE`] into `dir`
    /// (created if missing). Returns the manifest that was written.
    ///
    /// # Errors
    ///
    /// [`ShardError::Search`] for invalid configurations or non-binary
    /// data under binary-only compositions (exactly as
    /// [`SearcherBuilder::build`] would fail), [`ShardError::Io`] for
    /// filesystem failures.
    pub fn build_to_dir(&self, data: &Dataset, dir: &Path) -> Result<ShardManifest, ShardError> {
        std::fs::create_dir_all(dir).map_err(ShardError::Io)?;
        let parts = data.partition(self.n_shards, |id| {
            self.partition.shard_of(id, self.n_shards)
        });
        let threads = self.cfg.parallelism.resolve();

        // Build shards concurrently, each serially inside, so snapshot
        // bytes are a pure function of (corpus, config, partition).
        let built: Vec<Result<Searcher, ShardError>> =
            fan_out(self.n_shards, threads, |_, range| {
                range
                    .map(|s| {
                        SearcherBuilder::new(self.cfg)
                            .composition(self.composition)
                            .hash_mode(self.mode)
                            .parallelism(Parallelism::serial())
                            .build(parts[s].clone())
                            .map_err(ShardError::Search)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        let mut shards = Vec::with_capacity(self.n_shards);
        for (s, built) in built.into_iter().enumerate() {
            let searcher = built?;
            let mut bytes = Vec::new();
            searcher.save(&mut bytes).map_err(ShardError::Io)?;
            let file = format!("shard_{s:04}.snap");
            std::fs::write(dir.join(&file), &bytes).map_err(ShardError::Io)?;
            shards.push(ShardEntry {
                file,
                n_vectors: searcher.len() as u64,
                checksum: fnv1a_checksum(&bytes),
            });
        }

        let manifest = ShardManifest {
            format_version: MANIFEST_FORMAT_VERSION,
            partition: self.partition,
            n_total: data.len() as u64,
            dim: data.dim(),
            config_fingerprint: config_fingerprint(&self.cfg, self.composition, self.mode),
            shards,
        };
        manifest.save(&dir.join(MANIFEST_FILE))?;
        Ok(manifest)
    }
}
