//! Typed errors for sharded building, opening, and serving.

use std::path::PathBuf;

use bayeslsh_core::{ConfigDiff, SearchError, SnapshotError};

/// Everything that can go wrong between a shard manifest on disk and a
/// serving [`ShardedSearcher`](crate::ShardedSearcher). Every corruption
/// and mismatch mode is a distinct variant so operators (and the
/// corruption proptests) can tell a flipped bit from a stale build from
/// a missing file — none of them ever panics or silently mis-merges.
#[derive(Debug)]
pub enum ShardError {
    /// The manifest file does not start with the shard-manifest magic.
    BadMagic,
    /// The manifest was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the manifest header.
        found: u32,
    },
    /// The manifest body is malformed: truncated, checksum mismatch,
    /// unknown partition tag, inconsistent counts, or a partition
    /// replay that disagrees with the recorded per-shard sizes.
    CorruptManifest {
        /// What was wrong.
        detail: String,
    },
    /// A shard snapshot's whole-file checksum does not match the
    /// manifest — the snapshot was modified (or damaged) after the
    /// manifest was written.
    ShardChecksum {
        /// Index of the offending shard.
        shard: usize,
        /// Checksum recorded in the manifest.
        expected: u64,
        /// Checksum of the bytes on disk.
        found: u64,
    },
    /// A shard snapshot loads cleanly but was built under a different
    /// configuration than the manifest records — mixing shards from
    /// different builds would break the bit-identity guarantee.
    ConfigFingerprint {
        /// Index of the offending shard.
        shard: usize,
        /// Fingerprint recorded in the manifest.
        expected: u64,
        /// Fingerprint of the loaded shard's configuration.
        found: u64,
        /// The same disagreement in the shared structured shape
        /// (`SearchError::InvalidConfig` / `SnapshotError::ConfigMismatch`
        /// carry it too), for callers that diagnose programmatically.
        diff: ConfigDiff,
    },
    /// A shard snapshot file named by the manifest is missing.
    MissingShard {
        /// Index of the missing shard.
        shard: usize,
        /// Path that could not be opened.
        path: PathBuf,
    },
    /// A shard snapshot failed to load (see
    /// [`SnapshotError`] for the modes).
    Snapshot {
        /// Index of the offending shard.
        shard: usize,
        /// The underlying snapshot failure.
        source: SnapshotError,
    },
    /// A search-layer error: invalid configuration or query
    /// preconditions, surfaced verbatim from the per-shard searchers so
    /// a router request fails exactly as a single-index request would.
    Search(SearchError),
    /// An I/O failure outside the typed cases above.
    Io(std::io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::BadMagic => write!(f, "not a shard manifest (bad magic)"),
            ShardError::UnsupportedVersion { found } => {
                write!(f, "unsupported shard manifest version {found}")
            }
            ShardError::CorruptManifest { detail } => {
                write!(f, "corrupt shard manifest: {detail}")
            }
            ShardError::ShardChecksum {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard}: snapshot checksum {found:#018x} does not match \
                 the manifest's {expected:#018x}"
            ),
            ShardError::ConfigFingerprint {
                shard,
                expected,
                found,
                ..
            } => write!(
                f,
                "shard {shard}: config fingerprint {found:#018x} does not match \
                 the manifest's {expected:#018x} (shard from a different build?)"
            ),
            ShardError::MissingShard { shard, path } => {
                write!(f, "shard {shard}: snapshot {} is missing", path.display())
            }
            ShardError::Snapshot { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            ShardError::Search(e) => write!(f, "{e}"),
            ShardError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Snapshot { source, .. } => Some(source),
            ShardError::Search(e) => Some(e),
            ShardError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SearchError> for ShardError {
    fn from(e: SearchError) -> Self {
        ShardError::Search(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}
