//! The shard manifest: the small, checksummed file that makes a
//! directory of shard snapshots a *servable set* rather than loose
//! files.
//!
//! A manifest records the partition function (so a router can replay
//! the exact global-id → shard assignment), the serving-wide corpus
//! facts (total vectors, feature-space dimensionality), a fingerprint
//! of the build configuration, and — per shard — the snapshot file
//! name, its vector count, and the FNV-1a checksum of its bytes on
//! disk. Opening a manifest therefore proves, before any query runs,
//! that every shard is present, untampered, and from the same build.
//!
//! ## Wire format (version 1)
//!
//! All integers little-endian, written with [`WireWriter`]:
//!
//! ```text
//! magic            8 bytes  b"BLSHSHRD"
//! format_version   u32      1
//! partition tag    u8       0 = round-robin, 1 = hashed
//! partition seed   u64      0 for round-robin
//! shard_count      u32      >= 1
//! n_total          u64      sum of per-shard vector counts
//! dim              u32      feature-space dimensionality (global)
//! config_fingerprint u64    see [`config_fingerprint`]
//! per shard:
//!   file name      u32 length + UTF-8 bytes (relative to the manifest)
//!   n_vectors      u64
//!   checksum       u64      FNV-1a 64 of the snapshot file's bytes
//! checksum         u64      FNV-1a 64 of everything above
//! ```

use std::path::Path;

use bayeslsh_core::{
    Composition, GeneratorKind, HashMode, Measure, PipelineConfig, PriorChoice, VerifierKind,
};
use bayeslsh_numeric::wire::WireError;
use bayeslsh_numeric::{derive_seed, WireReader, WireWriter};

use crate::error::ShardError;

/// Magic bytes a shard manifest starts with.
pub const MANIFEST_MAGIC: [u8; 8] = *b"BLSHSHRD";

/// Current manifest format version.
pub const MANIFEST_FORMAT_VERSION: u32 = 1;

/// Default manifest file name inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.blsh";

/// Deterministic global-id → shard assignment policies. The policy and
/// its seed are recorded in the manifest, so builders and routers —
/// possibly different processes years apart — replay the identical
/// assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionFn {
    /// `shard = id mod n_shards`: perfectly balanced, locality-blind.
    RoundRobin,
    /// `shard = mix(seed, id) mod n_shards` with a SplitMix64-style
    /// mixer: pseudo-random balance, decorrelated from insertion order.
    Hashed {
        /// Mixer seed.
        seed: u64,
    },
}

impl PartitionFn {
    /// The shard that owns global id `id` among `n_shards` shards.
    pub fn shard_of(&self, id: u32, n_shards: usize) -> usize {
        debug_assert!(n_shards > 0);
        match self {
            PartitionFn::RoundRobin => id as usize % n_shards,
            PartitionFn::Hashed { seed } => {
                (derive_seed(*seed, id as u64) % n_shards as u64) as usize
            }
        }
    }

    fn tag(&self) -> u8 {
        match self {
            PartitionFn::RoundRobin => 0,
            PartitionFn::Hashed { .. } => 1,
        }
    }

    fn seed(&self) -> u64 {
        match self {
            PartitionFn::RoundRobin => 0,
            PartitionFn::Hashed { seed } => *seed,
        }
    }

    fn from_wire(tag: u8, seed: u64) -> Result<Self, ShardError> {
        match tag {
            0 => Ok(PartitionFn::RoundRobin),
            1 => Ok(PartitionFn::Hashed { seed }),
            other => Err(ShardError::CorruptManifest {
                detail: format!("unknown partition tag {other}"),
            }),
        }
    }
}

/// One shard's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Snapshot file name, relative to the manifest's directory.
    pub file: String,
    /// Number of corpus vectors the shard holds.
    pub n_vectors: u64,
    /// FNV-1a 64 checksum of the snapshot file's bytes.
    pub checksum: u64,
}

/// A parsed (and checksum-verified) shard manifest. See the
/// [module docs](self) for the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Format version the manifest was written with.
    pub format_version: u32,
    /// The global-id → shard assignment policy.
    pub partition: PartitionFn,
    /// Total corpus vectors across all shards.
    pub n_total: u64,
    /// Feature-space dimensionality (identical on every shard — the
    /// foundation of cross-shard signature identity).
    pub dim: u32,
    /// Fingerprint of the build configuration every shard must match;
    /// see [`config_fingerprint`].
    pub config_fingerprint: u64,
    /// Per-shard entries, in shard order.
    pub shards: Vec<ShardEntry>,
}

/// Map a wire-level failure onto the manifest error vocabulary.
fn wire_err(e: WireError) -> ShardError {
    match e {
        WireError::Io(e) => ShardError::Io(e),
        WireError::Truncated => ShardError::CorruptManifest {
            detail: "truncated".into(),
        },
        WireError::Corrupt { detail } => ShardError::CorruptManifest { detail },
    }
}

impl ShardManifest {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Serialize to bytes (including the trailing stream checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(Vec::new());
        let r: Result<(), WireError> = (|| {
            w.put_bytes(&MANIFEST_MAGIC)?;
            w.put_u32(self.format_version)?;
            w.put_u8(self.partition.tag())?;
            w.put_u64(self.partition.seed())?;
            w.put_u32(self.shards.len() as u32)?;
            w.put_u64(self.n_total)?;
            w.put_u32(self.dim)?;
            w.put_u64(self.config_fingerprint)?;
            for s in &self.shards {
                w.put_u32(s.file.len() as u32)?;
                w.put_bytes(s.file.as_bytes())?;
                w.put_u64(s.n_vectors)?;
                w.put_u64(s.checksum)?;
            }
            Ok(())
        })();
        r.expect("writing to a Vec cannot fail");
        w.finish().expect("writing to a Vec cannot fail")
    }

    /// Parse a manifest from bytes, verifying the trailing checksum and
    /// the internal count invariants.
    ///
    /// # Errors
    ///
    /// [`ShardError::BadMagic`], [`ShardError::UnsupportedVersion`], or
    /// [`ShardError::CorruptManifest`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShardError> {
        let mut r = WireReader::new(bytes);
        let mut magic = [0u8; 8];
        match r.get_bytes(&mut magic) {
            Ok(()) => {}
            Err(WireError::Truncated) => return Err(ShardError::BadMagic),
            Err(e) => return Err(wire_err(e)),
        }
        if magic != MANIFEST_MAGIC {
            return Err(ShardError::BadMagic);
        }
        let format_version = r.get_u32().map_err(wire_err)?;
        if format_version != MANIFEST_FORMAT_VERSION {
            return Err(ShardError::UnsupportedVersion {
                found: format_version,
            });
        }
        let tag = r.get_u8().map_err(wire_err)?;
        let seed = r.get_u64().map_err(wire_err)?;
        let partition = PartitionFn::from_wire(tag, seed)?;
        let shard_count = r.get_u32().map_err(wire_err)?;
        if shard_count == 0 {
            return Err(ShardError::CorruptManifest {
                detail: "zero shards".into(),
            });
        }
        let n_total = r.get_u64().map_err(wire_err)?;
        let dim = r.get_u32().map_err(wire_err)?;
        let config_fingerprint = r.get_u64().map_err(wire_err)?;
        let mut shards = Vec::with_capacity(shard_count.min(65_536) as usize);
        for _ in 0..shard_count {
            let name_len = r.get_u32().map_err(wire_err)? as u64;
            let name = r.get_byte_vec(name_len).map_err(wire_err)?;
            let file = String::from_utf8(name).map_err(|_| ShardError::CorruptManifest {
                detail: "shard file name is not UTF-8".into(),
            })?;
            let n_vectors = r.get_u64().map_err(wire_err)?;
            let checksum = r.get_u64().map_err(wire_err)?;
            shards.push(ShardEntry {
                file,
                n_vectors,
                checksum,
            });
        }
        r.verify_checksum().map_err(wire_err)?;
        let sum: u64 = shards.iter().map(|s| s.n_vectors).sum();
        if sum != n_total {
            return Err(ShardError::CorruptManifest {
                detail: format!("per-shard counts sum to {sum}, manifest says {n_total}"),
            });
        }
        Ok(ShardManifest {
            format_version,
            partition,
            n_total,
            dim,
            config_fingerprint,
            shards,
        })
    }

    /// Write the manifest to `path`.
    pub fn save(&self, path: &Path) -> Result<(), ShardError> {
        std::fs::write(path, self.to_bytes()).map_err(ShardError::Io)
    }

    /// Read and verify a manifest from `path`.
    pub fn load(path: &Path) -> Result<Self, ShardError> {
        let bytes = std::fs::read(path).map_err(ShardError::Io)?;
        Self::from_bytes(&bytes)
    }
}

/// A 64-bit fingerprint of everything that determines a build's output
/// besides the corpus: the hash family (measure tag plus per-family
/// parameters such as the E2LSH bucket width), the generator × verifier
/// composition, the hash mode, the multi-probe budget, and every
/// [`PipelineConfig`] field *except* `parallelism` (thread budgets change
/// wall-clock, never results — the workspace's parallel-equals-serial
/// guarantee). Two shards fingerprint equal iff a router may merge their
/// results into one bit-identical answer.
pub fn config_fingerprint(cfg: &PipelineConfig, composition: Composition, mode: HashMode) -> u64 {
    let mut w = WireWriter::new(Vec::new());
    let r: Result<(), WireError> = (|| {
        w.put_u8(match cfg.family.measure() {
            Measure::Cosine => 0,
            Measure::Jaccard => 1,
            Measure::L2 => 2,
            Measure::Mips => 3,
        })?;
        w.put_f64(cfg.family.l2_width().unwrap_or(0.0))?;
        w.put_u64(cfg.probes as u64)?;
        w.put_u8(match composition.generator {
            GeneratorKind::AllPairs => 0,
            GeneratorKind::LshBanding => 1,
            GeneratorKind::PpjoinPlus => 2,
        })?;
        w.put_u8(match composition.verifier {
            VerifierKind::Exact => 0,
            VerifierKind::Mle => 1,
            VerifierKind::Bayes => 2,
            VerifierKind::BayesLite => 3,
            VerifierKind::Sprt => 4,
        })?;
        w.put_u8(match mode {
            HashMode::Eager => 0,
            HashMode::Lazy => 1,
        })?;
        w.put_f64(cfg.threshold)?;
        w.put_u64(cfg.seed)?;
        w.put_f64(cfg.epsilon)?;
        w.put_f64(cfg.delta)?;
        w.put_f64(cfg.gamma)?;
        w.put_u32(cfg.k)?;
        w.put_u32(cfg.max_hashes)?;
        w.put_u32(cfg.lite_h)?;
        w.put_u32(cfg.approx_hashes)?;
        w.put_u32(cfg.band_width)?;
        w.put_f64(cfg.lsh_fnr)?;
        w.put_u8(match cfg.prior {
            PriorChoice::Uniform => 0,
            PriorChoice::Fitted => 1,
        })?;
        w.put_u64(cfg.prior_sample as u64)?;
        Ok(())
    })();
    r.expect("writing to a Vec cannot fail");
    w.checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_core::Algorithm;

    fn sample() -> ShardManifest {
        ShardManifest {
            format_version: MANIFEST_FORMAT_VERSION,
            partition: PartitionFn::Hashed { seed: 7 },
            n_total: 5,
            dim: 100,
            config_fingerprint: 0xDEAD_BEEF,
            shards: vec![
                ShardEntry {
                    file: "shard_0000.snap".into(),
                    n_vectors: 3,
                    checksum: 1,
                },
                ShardEntry {
                    file: "shard_0001.snap".into(),
                    n_vectors: 2,
                    checksum: 2,
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let back = ShardManifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            ShardManifest::from_bytes(&bytes),
            Err(ShardError::BadMagic)
        ));
        assert!(matches!(
            ShardManifest::from_bytes(b"short"),
            Err(ShardError::BadMagic)
        ));
        let mut bytes = sample().to_bytes();
        bytes[8] = 99; // format_version low byte
        assert!(matches!(
            ShardManifest::from_bytes(&bytes),
            Err(ShardError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn flipped_body_byte_fails_the_checksum() {
        let bytes = sample().to_bytes();
        for i in 13..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            assert!(
                matches!(
                    ShardManifest::from_bytes(&b),
                    Err(ShardError::CorruptManifest { .. })
                ),
                "flip at byte {i} must fail"
            );
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample().to_bytes();
        for len in 8..bytes.len() {
            assert!(
                matches!(
                    ShardManifest::from_bytes(&bytes[..len]),
                    Err(ShardError::CorruptManifest { .. })
                ),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn count_mismatch_is_detected() {
        let mut m = sample();
        m.n_total = 99;
        assert!(matches!(
            ShardManifest::from_bytes(&m.to_bytes()),
            Err(ShardError::CorruptManifest { .. })
        ));
    }

    #[test]
    fn partition_is_total_and_stable() {
        for n in 1..8usize {
            for id in 0..100u32 {
                let s = PartitionFn::RoundRobin.shard_of(id, n);
                assert!(s < n);
                assert_eq!(s, id as usize % n);
                let h = PartitionFn::Hashed { seed: 42 }.shard_of(id, n);
                assert!(h < n);
                assert_eq!(h, PartitionFn::Hashed { seed: 42 }.shard_of(id, n));
            }
        }
    }

    #[test]
    fn fingerprint_tracks_config_not_parallelism() {
        let cfg = PipelineConfig::cosine(0.7);
        let comp = Algorithm::LshBayesLsh.composition();
        let base = config_fingerprint(&cfg, comp, HashMode::Eager);
        let mut par = cfg;
        par.parallelism = bayeslsh_numeric::Parallelism::threads(4);
        assert_eq!(base, config_fingerprint(&par, comp, HashMode::Eager));
        let mut other = cfg;
        other.seed = 43;
        assert_ne!(base, config_fingerprint(&other, comp, HashMode::Eager));
        assert_ne!(base, config_fingerprint(&cfg, comp, HashMode::Lazy));
        assert_ne!(
            base,
            config_fingerprint(&cfg, Algorithm::Lsh.composition(), HashMode::Eager)
        );
    }
}
