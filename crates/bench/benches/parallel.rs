//! Parallel execution benchmarks: the all-pairs join and the searcher
//! build at 1 vs. N worker threads. `cargo bench -p bayeslsh-bench --bench
//! parallel` regenerates the README's speedup table (the `repro parallel`
//! subcommand prints it at larger scales).

use std::hint::black_box;

use bayeslsh_core::{Algorithm, Parallelism, PipelineConfig, Searcher};
use bayeslsh_datasets::Preset;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_all_pairs_by_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_all_pairs");
    g.sample_size(10);
    for threads in [1u32, 2, 4, 8] {
        g.bench_function(format!("lsh_bayeslsh_t{threads}"), |b| {
            let data = Preset::Rcv1.load(0.0008, 17);
            let mut cfg = PipelineConfig::cosine(0.7);
            cfg.parallelism = Parallelism::threads(threads);
            let searcher = Searcher::builder(cfg)
                .algorithm(Algorithm::LshBayesLsh)
                .build(data)
                .expect("valid config");
            b.iter(|| black_box(searcher.all_pairs().expect("runs").pairs.len()));
        });
    }
    g.finish();
}

fn bench_build_by_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_build");
    g.sample_size(10);
    for threads in [1u32, 4] {
        g.bench_function(format!("searcher_build_t{threads}"), |b| {
            let data = Preset::Rcv1.load(0.0008, 18);
            let mut cfg = PipelineConfig::cosine(0.7);
            cfg.parallelism = Parallelism::threads(threads);
            b.iter(|| {
                let searcher = Searcher::builder(cfg)
                    .algorithm(Algorithm::LshBayesLsh)
                    .build(data.clone())
                    .expect("valid config");
                black_box(searcher.hash_count())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_all_pairs_by_threads, bench_build_by_threads);
criterion_main!(benches);
