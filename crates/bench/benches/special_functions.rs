//! Micro-benchmarks of the numeric substrate: the incomplete beta function
//! is evaluated on every pruning/concentration query, so its cost (and the
//! value of the §4.3 precomputation) is worth pinning down.
//!
//! Includes **ablation: minMatches table** — one posterior tail evaluation
//! (what line 10 of Algorithm 1 would cost online) vs one table lookup.

use std::hint::black_box;

use bayeslsh_core::{CosineModel, JaccardModel, MinMatchTable, PosteriorModel};
use bayeslsh_numeric::{ln_gamma, reg_inc_beta, BetaDist, Binomial};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_special(c: &mut Criterion) {
    let mut g = c.benchmark_group("special_functions");
    g.bench_function("ln_gamma", |b| {
        b.iter(|| ln_gamma(black_box(123.456)));
    });
    g.bench_function("reg_inc_beta_small", |b| {
        b.iter(|| reg_inc_beta(black_box(25.0), black_box(9.0), black_box(0.7)));
    });
    g.bench_function("reg_inc_beta_large", |b| {
        b.iter(|| reg_inc_beta(black_box(1537.0), black_box(513.0), black_box(0.72)));
    });
    g.bench_function("binomial_cdf_n2048", |b| {
        let bin = Binomial::new(2048, 0.7);
        b.iter(|| bin.cdf(black_box(1400)));
    });
    g.bench_function("beta_posterior_update_and_mode", |b| {
        let prior = BetaDist::uniform();
        b.iter(|| prior.posterior(black_box(24), black_box(32)).mode());
    });
    g.finish();
}

fn bench_minmatch_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("minmatch_ablation");
    let jac = JaccardModel::uniform();
    let cos = CosineModel::new();
    // Online inference: what every chunk of every pair would cost without
    // the precomputed table.
    g.bench_function("online_tail_jaccard", |b| {
        b.iter(|| jac.prob_above_threshold(black_box(20), black_box(32), black_box(0.7)));
    });
    g.bench_function("online_tail_cosine", |b| {
        b.iter(|| cos.prob_above_threshold(black_box(20), black_box(32), black_box(0.7)));
    });
    // Precomputed: the lookup BayesLSH actually performs.
    let table = MinMatchTable::build(&cos, 0.7, 0.03, 32, 2048);
    g.bench_function("table_lookup", |b| {
        b.iter(|| table.should_prune(black_box(20), black_box(32)));
    });
    // And the one-time build cost being amortized.
    g.bench_function("table_build_2048", |b| {
        b.iter(|| MinMatchTable::build(&cos, black_box(0.7), 0.03, 32, 2048));
    });
    g.finish();
}

criterion_group!(benches, bench_special, bench_minmatch_ablation);
criterion_main!(benches);
