//! Candidate-generation benchmarks: AllPairs vs LSH banding vs PPJoin+,
//! including **ablation: PPJoin suffix-filter depth** (DESIGN.md §5).

use std::hint::black_box;

use bayeslsh_candgen::ppjoin::ppjoin_jaccard_with_stats;
use bayeslsh_candgen::{
    all_pairs_cosine, all_pairs_cosine_candidates, lsh_candidates_bits, ppjoin_jaccard,
    BandingParams,
};
use bayeslsh_datasets::Preset;
use bayeslsh_lsh::{cos_to_r, BitSignatures, SrpHasher};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_cosine_generators(c: &mut Criterion) {
    let data = Preset::Rcv1.load(0.0015, 41);
    let t = 0.7;
    let mut g = c.benchmark_group("candgen_cosine");
    g.sample_size(10);
    g.bench_function("allpairs_exact", |b| {
        b.iter(|| black_box(all_pairs_cosine(&data, black_box(t)).len()));
    });
    g.bench_function("allpairs_candidates", |b| {
        b.iter(|| black_box(all_pairs_cosine_candidates(&data, black_box(t)).len()));
    });
    g.bench_function("lsh_banding", |b| {
        let params = BandingParams::for_threshold(cos_to_r(t), 8, 0.03, 10_000);
        b.iter(|| {
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 3), data.len());
            black_box(lsh_candidates_bits(&mut pool, &data, params).len())
        });
    });
    g.finish();
}

fn bench_ppjoin(c: &mut Criterion) {
    let data = Preset::Twitter.load_binary(0.004, 42);
    let mut g = c.benchmark_group("candgen_ppjoin");
    g.sample_size(10);
    g.bench_function("jaccard_t05", |b| {
        b.iter(|| black_box(ppjoin_jaccard(&data, black_box(0.5)).len()));
    });
    for depth in [0u32, 3] {
        g.bench_function(format!("suffix_depth{depth}"), |b| {
            b.iter(|| {
                let (out, stats) = ppjoin_jaccard_with_stats(&data, black_box(0.5), depth);
                black_box((out.len(), stats.verified))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cosine_generators, bench_ppjoin);
criterion_main!(benches);
