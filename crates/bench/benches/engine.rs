//! Verification-engine benchmarks: BayesLSH vs the fixed-n MLE vs exact
//! computation on the *same* candidate set — the heart of the paper's
//! speedup claims — plus **ablation: chunk size k** (DESIGN.md §5.1).

use std::hint::black_box;

use bayeslsh_candgen::all_pairs_cosine_candidates;
use bayeslsh_core::{
    bayes_verify, bayes_verify_lite, mle_verify, BayesLshConfig, CosineModel, LiteConfig,
};
use bayeslsh_datasets::Preset;
use bayeslsh_lsh::{r_to_cos, BitSignatures, SrpHasher};
use bayeslsh_sparse::cosine;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_verification(c: &mut Criterion) {
    let data = Preset::Rcv1.load(0.0015, 31);
    let t = 0.7;
    let cands = all_pairs_cosine_candidates(&data, t);
    let mut g = c.benchmark_group("verification");
    g.sample_size(10);

    g.bench_function("bayes_full", |b| {
        b.iter(|| {
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 1), data.len());
            let (out, _) = bayes_verify(
                &data,
                &mut pool,
                &CosineModel::new(),
                black_box(&cands),
                &BayesLshConfig::cosine(t),
            );
            black_box(out.len())
        });
    });
    g.bench_function("bayes_lite", |b| {
        b.iter(|| {
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 1), data.len());
            let (out, _) = bayes_verify_lite(
                &data,
                &mut pool,
                &CosineModel::new(),
                black_box(&cands),
                &LiteConfig::cosine(t),
                cosine,
            );
            black_box(out.len())
        });
    });
    g.bench_function("mle_fixed_2048", |b| {
        b.iter(|| {
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 1), data.len());
            let (out, _) = mle_verify(&data, &mut pool, black_box(&cands), 2048, t, r_to_cos);
            black_box(out.len())
        });
    });
    g.bench_function("exact", |b| {
        b.iter(|| {
            let n = cands
                .iter()
                .filter(|&&(a, b)| cosine(data.vector(a), data.vector(b)) >= t)
                .count();
            black_box(n)
        });
    });
    g.finish();
}

fn bench_chunk_size(c: &mut Criterion) {
    let data = Preset::Rcv1.load(0.0015, 32);
    let t = 0.7;
    let cands = all_pairs_cosine_candidates(&data, t);
    let mut g = c.benchmark_group("chunk_size_ablation");
    g.sample_size(10);
    for k in [32u32, 64, 128, 256] {
        g.bench_function(format!("k{k}"), |b| {
            let cfg = BayesLshConfig {
                k,
                ..BayesLshConfig::cosine(t)
            };
            b.iter(|| {
                let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 2), data.len());
                let (out, _) = bayes_verify(
                    &data,
                    &mut pool,
                    &CosineModel::new(),
                    black_box(&cands),
                    &cfg,
                );
                black_box(out.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_verification, bench_chunk_size);
criterion_main!(benches);
