//! Signature-comparison throughput: the XOR+popcount inner loop is what
//! BayesLSH executes millions of times per join.

use std::hint::black_box;

use bayeslsh_lsh::{BitSignatures, IntSignatures, MinHasher, SignaturePool, SrpHasher};
use bayeslsh_numeric::Xoshiro256;
use bayeslsh_sparse::SparseVector;
use criterion::{criterion_group, criterion_main, Criterion};

fn random_vectors(n: usize, dim: u32, len: usize, seed: u64) -> Vec<SparseVector> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pairs: Vec<(u32, f32)> = (0..len)
                .map(|_| {
                    (
                        rng.next_below(dim as u64) as u32,
                        (rng.next_f64() + 0.1) as f32,
                    )
                })
                .collect();
            SparseVector::from_pairs(pairs)
        })
        .collect()
}

fn bench_bit_agreements(c: &mut Criterion) {
    let vs = random_vectors(64, 2000, 50, 3);
    let mut pool = BitSignatures::new(SrpHasher::new(2000, 4), vs.len());
    for (i, v) in vs.iter().enumerate() {
        pool.ensure(i as u32, v, 2048);
    }
    let mut g = c.benchmark_group("agreements");
    g.bench_function("bits_chunk32", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..63u32 {
                acc += pool.agreements(i, i + 1, black_box(0), black_box(32));
            }
            black_box(acc)
        });
    });
    g.bench_function("bits_full2048", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..63u32 {
                acc += pool.agreements(i, i + 1, black_box(0), black_box(2048));
            }
            black_box(acc)
        });
    });
    g.bench_function("bits_unaligned_range", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..63u32 {
                acc += pool.agreements(i, i + 1, black_box(7), black_box(1999));
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_int_agreements(c: &mut Criterion) {
    let vs: Vec<SparseVector> = random_vectors(64, 2000, 50, 5)
        .into_iter()
        .map(|v| v.binarize())
        .collect();
    let mut pool = IntSignatures::new(MinHasher::new(6), vs.len());
    for (i, v) in vs.iter().enumerate() {
        pool.ensure(i as u32, v, 512);
    }
    let mut g = c.benchmark_group("agreements");
    g.bench_function("ints_chunk32", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..63u32 {
                acc += pool.agreements(i, i + 1, black_box(0), black_box(32));
            }
            black_box(acc)
        });
    });
    g.bench_function("ints_full512", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..63u32 {
                acc += pool.agreements(i, i + 1, black_box(0), black_box(512));
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_bit_agreements, bench_int_agreements);
criterion_main!(benches);
