//! Hash-family throughput.
//!
//! Includes **ablation: quantized vs float plane storage** (paper §4.3) —
//! the 2-byte scheme halves memory; this measures what it costs (or saves)
//! in hashing throughput.

use std::hint::black_box;

use bayeslsh_datasets::{generate, CorpusConfig};
use bayeslsh_lsh::srp::PlaneStorage;
use bayeslsh_lsh::{MinHasher, SrpHasher};
use criterion::{criterion_group, criterion_main, Criterion};

fn corpus() -> bayeslsh_sparse::Dataset {
    generate(&CorpusConfig {
        n_vectors: 200,
        dim: 8_000,
        avg_len: 100,
        seed: 77,
        ..CorpusConfig::default()
    })
}

fn bench_srp(c: &mut Criterion) {
    let data = corpus();
    let mut g = c.benchmark_group("srp_hashing");
    g.sample_size(20);
    for (label, storage) in [
        ("quantized", PlaneStorage::Quantized),
        ("float", PlaneStorage::Float),
    ] {
        g.bench_function(format!("256bits_per_vector_{label}"), |b| {
            // Pre-materialize planes so the measurement is pure hashing.
            let mut hasher = SrpHasher::with_storage(data.dim(), 5, storage);
            hasher.ensure_planes(256);
            b.iter(|| {
                let mut acc = 0u32;
                for (_, v) in data.iter().take(50) {
                    let mut words = Vec::with_capacity(8);
                    hasher.hash_bits_into(v, 0, 256, &mut words);
                    acc ^= words[0];
                }
                black_box(acc)
            });
        });
    }
    g.bench_function("512bits_packed_shared_scratch", |b| {
        // The read-only splice kernel parallel workers run: word-aligned
        // packed ranges, one scratch reused across calls.
        let mut hasher = SrpHasher::new(data.dim(), 5);
        hasher.ensure_planes(512);
        let mut scratch = bayeslsh_lsh::SrpScratch::new();
        b.iter(|| {
            let mut acc = 0u32;
            for (_, v) in data.iter().take(50) {
                let words = hasher.hash_bits_packed_with(v, 0, 512, &mut scratch);
                acc ^= words[0];
            }
            black_box(acc)
        });
    });
    g.bench_function("plane_generation_64", |b| {
        b.iter(|| {
            let mut hasher = SrpHasher::new(black_box(data.dim()), 9);
            hasher.ensure_planes(64);
            black_box(hasher.planes_ready())
        });
    });
    g.finish();
}

fn bench_minhash(c: &mut Criterion) {
    let data = corpus().binarized();
    let mut g = c.benchmark_group("minhash");
    g.sample_size(20);
    g.bench_function("64_hashes_per_vector", |b| {
        let mut hasher = MinHasher::new(11);
        hasher.ensure_functions(64);
        b.iter(|| {
            let mut acc = 0u32;
            for (_, v) in data.iter().take(50) {
                let mut out = Vec::with_capacity(64);
                hasher.hash_range_into(v, 0, 64, &mut out);
                acc ^= out[0];
            }
            black_box(acc)
        });
    });
    g.bench_function("64_hashes_packed_shared_scratch", |b| {
        let mut hasher = MinHasher::new(11);
        hasher.ensure_functions(64);
        let mut scratch = bayeslsh_lsh::MinScratch::new();
        b.iter(|| {
            let mut acc = 0u32;
            for (_, v) in data.iter().take(50) {
                let out = hasher.hash_range_packed_with(v, 0, 64, &mut scratch);
                acc ^= out[0];
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_srp, bench_minhash);
criterion_main!(benches);
