//! End-to-end pipeline benchmarks: one Figure 3 cell per algorithm
//! (WikiWords100K-like, t = 0.7, weighted cosine) under Criterion's
//! statistical machinery.

use std::hint::black_box;

use bayeslsh_core::{run_algorithm, Algorithm, PipelineConfig};
use bayeslsh_datasets::Preset;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipelines(c: &mut Criterion) {
    let data = Preset::WikiWords100K.load(0.003, 51);
    let cfg = PipelineConfig::cosine(0.7);
    let mut g = c.benchmark_group("pipeline_wikiwords_t07");
    g.sample_size(10);
    for algo in [
        Algorithm::AllPairs,
        Algorithm::ApBayesLsh,
        Algorithm::ApBayesLshLite,
        Algorithm::Lsh,
        Algorithm::LshApprox,
        Algorithm::LshBayesLsh,
        Algorithm::LshBayesLshLite,
    ] {
        g.bench_function(algo.name().replace(' ', "_"), |b| {
            b.iter(|| black_box(run_algorithm(algo, &data, &cfg).pairs.len()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
