//! Regenerate the BayesLSH paper's tables and figures on scaled synthetic
//! datasets.
//!
//! ```text
//! repro <experiment> [--scale S] [--seed N]
//!
//! experiments:
//!   fig1     hashes needed vs similarity (classical estimation)
//!   fig2     runtime vs gamma/delta/epsilon (LSH+BayesLSH)
//!   fig3     timing sweeps: all algorithms x datasets x thresholds
//!   fig4     candidates remaining vs hashes examined
//!   fig5     prior-vs-data posterior convergence
//!   table1   dataset statistics
//!   table2   fastest BayesLSH variant + speedups (runs the fig3 sweeps)
//!   table3   recall of AP+BayesLSH / AP+BayesLSH-Lite
//!   table4   estimate errors: LSH Approx vs LSH+BayesLSH
//!   table5   output quality vs gamma/delta/epsilon
//!   parallel all-pairs speedup vs worker threads (1/2/4/8)
//!   bench-baseline  hashing-kernel + verification throughput baseline,
//!               written as BENCH_<n>.json (--out); --diff-schema holds the
//!               key set against a committed baseline, --assert-floor fails
//!               on throughput regressions past the tolerance
//!   save-index  build a Searcher on the RCV1-shaped preset and persist a
//!               versioned snapshot (--out, default index.snap)
//!   serve       cold-load a snapshot (--from-snapshot) and time it against
//!               a from-scratch rebuild, asserting bit-identical output
//!   inspect-snapshot PATH  decode a snapshot's header (version, measure,
//!               composition, counts) and verify its checksum
//!   shard-build build the preset corpus as N disjoint shards (--shards,
//!               default 4) and save snapshots + manifest under --out
//!               (default shards/)
//!   shard-serve open a shard manifest (--from-manifest) and sweep queries
//!               through scatter-gather vs a single rebuilt index,
//!               asserting bit-identical output and hot-swapping a reload
//!               mid-sweep
//!   serve-loop  drive a ServingSearcher under mixed load — concurrent
//!               readers vs a writer batching inserts/removes into
//!               published epochs — and report p50/p95/p99 latency,
//!               written as SERVE_LOOP.json (--out)
//!   all      everything above
//! ```
//!
//! Use `--release` — the sweeps are CPU-bound.

use bayeslsh_bench::report::{fmt_count, fmt_secs, render_table};
use bayeslsh_bench::timing::Family;
use bayeslsh_bench::{
    baseline, fig1, fig5, parallel, params, persist, pruning, quality, serve_loop, shard, table1,
    timing,
};
use bayeslsh_datasets::Preset;

struct Args {
    command: String,
    /// Positional argument after the command (e.g. the snapshot path
    /// for `inspect-snapshot`).
    path: Option<String>,
    scale: f64,
    seed: u64,
    shards: usize,
    out: Option<String>,
    from_snapshot: Option<String>,
    from_manifest: Option<String>,
    diff_schema: Option<String>,
    assert_floor: Option<String>,
}

impl Args {
    /// The output path, with a per-command default.
    fn out_or(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_string())
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        path: None,
        scale: 0.004,
        seed: 42,
        shards: 4,
        out: None,
        from_snapshot: None,
        from_manifest: None,
        diff_schema: None,
        assert_floor: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--scale needs a number"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--seed needs an integer"));
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage_error("--shards needs a positive integer"));
            }
            "--out" => {
                args.out = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--out needs a path")),
                );
            }
            "--from-manifest" => {
                args.from_manifest = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--from-manifest needs a path")),
                );
            }
            "--from-snapshot" => {
                args.from_snapshot = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--from-snapshot needs a path")),
                );
            }
            "--diff-schema" => {
                args.diff_schema = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--diff-schema needs a path")),
                );
            }
            "--assert-floor" => {
                args.assert_floor = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--assert-floor needs a path")),
                );
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            cmd if args.command.is_empty() && !cmd.starts_with('-') => {
                args.command = cmd.to_string();
            }
            p if args.path.is_none() && !p.starts_with('-') => {
                args.path = Some(p.to_string());
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if args.command.is_empty() {
        usage_error("missing experiment");
    }
    args
}

/// Runtime failure: report and exit 2.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Usage failure (bad flag, unknown or missing experiment, missing
/// required option): report, print the subcommand table, exit 2. Every
/// argument error funnels through here so the CLI contract is uniform.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    print_usage();
    std::process::exit(2);
}

/// Every subcommand `main` dispatches on, in usage order. Kept next to
/// `print_usage` so an arm added to `main` without a row here is caught
/// by the usage test below.
const SUBCOMMANDS: &[(&str, &str)] = &[
    ("fig1", "hashes needed vs similarity (classical estimation)"),
    ("fig2", "runtime vs gamma/delta/epsilon (LSH+BayesLSH)"),
    (
        "fig3",
        "timing sweeps: all algorithms x datasets x thresholds",
    ),
    ("fig4", "candidates remaining vs hashes examined"),
    ("fig5", "prior-vs-data posterior convergence"),
    ("table1", "dataset statistics"),
    ("table2", "fastest BayesLSH variant + speedups"),
    ("table3", "recall of AP+BayesLSH / AP+BayesLSH-Lite"),
    ("table4", "estimate errors: LSH Approx vs LSH+BayesLSH"),
    ("table5", "output quality vs gamma/delta/epsilon"),
    ("parallel", "all-pairs speedup vs worker threads"),
    (
        "bench-baseline",
        "hashing + verification throughput baseline",
    ),
    (
        "save-index",
        "build and persist a versioned snapshot (--out)",
    ),
    (
        "serve",
        "cold-load a snapshot (--from-snapshot) vs a rebuild",
    ),
    (
        "inspect-snapshot",
        "decode a snapshot header + verify its checksum (PATH)",
    ),
    (
        "shard-build",
        "build the corpus as N shards (--shards, --out DIR)",
    ),
    (
        "shard-serve",
        "scatter-gather vs single index (--from-manifest)",
    ),
    (
        "serve-loop",
        "mixed read/write latency harness: p50/p95/p99 (--out JSON)",
    ),
    ("all", "everything above"),
];

fn print_usage() {
    eprintln!(
        "usage: repro <experiment> [PATH] [--scale S] [--seed N] [--shards N] [--out PATH] \
         [--from-snapshot PATH] [--from-manifest PATH] [--diff-schema PATH] \
         [--assert-floor PATH]\n\nexperiments:"
    );
    for (name, what) in SUBCOMMANDS {
        eprintln!("  {name:<16} {what}");
    }
}

fn run_save_index(args: &Args) {
    let out = args.out_or("index.snap");
    banner(&format!(
        "Save index: build once, persist the snapshot (scale {}, -> {out})",
        args.scale
    ));
    match persist::save_index(args.scale, args.seed, &out) {
        Ok(r) => {
            println!(
                "built {} vectors ({} hashes) in {}; saved {} in {}",
                fmt_count(r.n_vectors as u64),
                fmt_count(r.hashes),
                fmt_secs(r.build_secs),
                fmt_count(r.bytes),
                fmt_secs(r.save_secs),
            );
            println!(
                "serve it with: repro serve --from-snapshot {out} --scale {}",
                args.scale
            );
        }
        Err(e) => die(&e),
    }
}

fn run_serve(args: &Args) {
    let Some(path) = args.from_snapshot.as_deref() else {
        usage_error("serve needs --from-snapshot PATH (from a prior save-index)");
    };
    banner(&format!(
        "Serve: cold-load {path} vs rebuild (scale {})",
        args.scale
    ));
    match persist::serve(args.scale, args.seed, path) {
        Ok(r) => {
            let table = vec![
                vec!["probe header".to_string(), fmt_secs(r.probe_secs)],
                vec!["cold load".to_string(), fmt_secs(r.load_secs)],
                vec!["rebuild from scratch".to_string(), fmt_secs(r.rebuild_secs)],
                vec!["load speedup".to_string(), format!("{:.2}x", r.speedup)],
            ];
            print!("{}", render_table(&["phase", "time"], &table));
            println!(
                "{} queries on the loaded index in {} — output asserted bit-identical \
                 to the rebuild ({} vectors)",
                r.queries,
                fmt_secs(r.query_secs),
                fmt_count(r.n_vectors as u64),
            );
            println!(
                "verifier cost: {} hash comparisons ({:.1} per accepted neighbor)",
                fmt_count(r.hashes_compared),
                r.hashes_per_accepted_pair,
            );
            println!(
                "banding FNR: achieved {:.4} vs requested {:.4}{}",
                r.achieved_fnr,
                r.requested_fnr,
                if r.fnr_clamped {
                    " (band cap clamped l — guarantee weakened)"
                } else {
                    ""
                },
            );
        }
        Err(e) => die(&e),
    }
}

fn run_inspect_snapshot(args: &Args) {
    let Some(path) = args.path.as_deref() else {
        usage_error("inspect-snapshot needs a PATH argument");
    };
    banner(&format!("Inspect snapshot: {path}"));
    match persist::inspect(path) {
        Ok(r) => {
            let h = &r.header;
            let table = vec![
                vec!["format version".to_string(), h.format_version.to_string()],
                vec!["measure".to_string(), format!("{:?}", h.measure)],
                vec!["composition".to_string(), format!("{:?}", h.composition)],
                vec!["hash mode".to_string(), format!("{:?}", h.hash_mode)],
                vec!["build threads".to_string(), h.threads.to_string()],
                vec!["signature depth".to_string(), h.sig_depth.to_string()],
                vec!["vectors".to_string(), fmt_count(h.n_vectors)],
                vec!["dimensions".to_string(), h.dim.to_string()],
                vec!["total hashes".to_string(), fmt_count(h.total_hashes)],
                vec!["file size".to_string(), fmt_count(r.bytes)],
            ];
            print!("{}", render_table(&["field", "value"], &table));
            match r.damage {
                None => println!("checksum: OK (full load verified)"),
                Some(reason) => die(&format!("checksum: DAMAGED — {reason}")),
            }
        }
        Err(e) => die(&e),
    }
}

fn run_shard_build(args: &Args) {
    let out = args.out_or("shards");
    banner(&format!(
        "Shard build: partition into {} shards (scale {}, -> {out}/)",
        args.shards, args.scale
    ));
    match shard::shard_build(args.scale, args.seed, args.shards, &out) {
        Ok(r) => {
            println!(
                "built {} vectors as {} shards in {}; {} on disk (sizes: {})",
                fmt_count(r.n_vectors as u64),
                r.n_shards,
                fmt_secs(r.build_secs),
                fmt_count(r.bytes),
                r.shard_sizes
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join("/"),
            );
            println!(
                "serve it with: repro shard-serve --from-manifest {} --scale {}",
                r.manifest_path, args.scale
            );
        }
        Err(e) => die(&e),
    }
}

fn run_shard_serve(args: &Args) {
    let Some(path) = args.from_manifest.as_deref() else {
        usage_error("shard-serve needs --from-manifest PATH (from a prior shard-build)");
    };
    banner(&format!(
        "Shard serve: scatter-gather over {path} vs a single rebuilt index (scale {})",
        args.scale
    ));
    match shard::shard_serve(args.scale, args.seed, path) {
        Ok(r) => {
            let table = vec![
                vec!["open + load shards".to_string(), fmt_secs(r.open_secs)],
                vec!["rebuild single index".to_string(), fmt_secs(r.rebuild_secs)],
                vec![
                    format!("{} queries, scatter-gather", r.queries),
                    fmt_secs(r.scatter_secs),
                ],
                vec![
                    format!("{} queries, single index", r.queries),
                    fmt_secs(r.single_secs),
                ],
                vec!["hot-swap reload".to_string(), fmt_secs(r.reload_secs)],
            ];
            print!("{}", render_table(&["phase", "time"], &table));
            println!(
                "{} vectors across {} shards — every answer asserted bit-identical to the \
                 single index; reload mid-sweep served without error (generation {})",
                fmt_count(r.n_vectors as u64),
                r.n_shards,
                r.generation,
            );
        }
        Err(e) => die(&e),
    }
}

fn run_serve_loop(args: &Args) {
    let out = args.out_or("SERVE_LOOP.json");
    let cfg = serve_loop::ServeLoopConfig {
        scale: args.scale,
        seed: args.seed,
        ..serve_loop::ServeLoopConfig::default()
    };
    banner(&format!(
        "Serve loop: {} readers x {} queries vs 1 writer x {} batches (scale {}, -> {out})",
        cfg.readers, cfg.queries_per_reader, cfg.batches, args.scale
    ));
    let report = match serve_loop::run(&cfg) {
        Ok(r) => r,
        Err(e) => die(&e),
    };
    let lat_row = |name: &str, l: &serve_loop::LatencySummary| {
        vec![
            name.to_string(),
            fmt_count(l.count),
            format!("{:.0}us", l.p50_us),
            format!("{:.0}us", l.p95_us),
            format!("{:.0}us", l.p99_us),
            format!("{:.0}us", l.max_us),
        ]
    };
    let table = vec![
        lat_row("read (query)", &report.read),
        lat_row("write (batch+publish)", &report.write),
    ];
    print!(
        "{}",
        render_table(&["op", "count", "p50", "p95", "p99", "max"], &table)
    );
    println!(
        "{} vectors served; {} epochs published ({} observed by readers); \
         {} inserts, {} removes, {} reclaimed by compaction",
        fmt_count(report.n_vectors as u64),
        report.epochs_published,
        report.epochs_observed,
        report.inserts,
        report.removes,
        report.reclaimed,
    );
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        die(&format!("cannot write {out}: {e}"));
    }
    // Validate what was written, exactly like bench-baseline: the CI
    // serving job smoke-tests this path.
    match serve_loop::validate_json(&std::fs::read_to_string(&out).unwrap_or_default()) {
        Ok(()) => println!("wrote {out} (schema OK)"),
        Err(e) => die(&format!(
            "emitted serve-loop report failed schema check: {e}"
        )),
    }
}

fn run_bench_baseline(args: &Args) {
    let out = args.out_or("BENCH_10.json");
    banner(&format!(
        "Perf baseline: hashing kernels + verification (scale {}, -> {out})",
        args.scale
    ));
    let report = baseline::run(args.scale, args.seed);
    let table = vec![
        vec![
            "SRP (quantized)".to_string(),
            fmt_count(report.srp.scalar.per_s as u64),
            fmt_count(report.srp.kernel.per_s as u64),
            format!("{:.2}x", report.srp.speedup),
        ],
        vec![
            "MinHash".to_string(),
            fmt_count(report.minhash.scalar.per_s as u64),
            fmt_count(report.minhash.kernel.per_s as u64),
            format!("{:.2}x", report.minhash.speedup),
        ],
        vec![
            "E2LSH (p-stable)".to_string(),
            fmt_count(report.e2lsh_hash.scalar.per_s as u64),
            fmt_count(report.e2lsh_hash.kernel.per_s as u64),
            format!("{:.2}x", report.e2lsh_hash.speedup),
        ],
    ];
    print!(
        "{}",
        render_table(
            &["kernel", "scalar comp/s", "kernel comp/s", "speedup"],
            &table
        )
    );
    println!(
        "multi-probe queries: {} in {} ({} queries/s, {} bucket probes)",
        fmt_count(report.multiprobe_query.queries),
        fmt_secs(report.multiprobe_query.secs),
        fmt_count(report.multiprobe_query.queries_per_s as u64),
        fmt_count(report.multiprobe_query.bucket_probes),
    );
    println!(
        "verify (cold pool): {} pairs in {} ({} pairs/s, {} hash comparisons, \
         {:.1} hashes/accepted pair)",
        fmt_count(report.verify.pairs),
        fmt_secs(report.verify.secs),
        fmt_count(report.verify.pairs_per_s as u64),
        fmt_count(report.verify.hash_comparisons),
        report.verify.hashes_per_accepted_pair,
    );
    println!(
        "verify (batched, pre-hashed): {} pairs in {} ({} pairs/s)",
        fmt_count(report.verify_batched.pairs),
        fmt_secs(report.verify_batched.secs),
        fmt_count(report.verify_batched.pairs_per_s as u64),
    );
    println!(
        "sprt verify (cold pool): {} pairs in {} ({} pairs/s, {} hash comparisons, \
         {:.1} hashes/accepted pair)",
        fmt_count(report.sprt_verify.pairs),
        fmt_secs(report.sprt_verify.secs),
        fmt_count(report.sprt_verify.pairs_per_s as u64),
        fmt_count(report.sprt_verify.hash_comparisons),
        report.sprt_verify.hashes_per_accepted_pair,
    );
    println!(
        "sprt vs bayes: {:.2}x pairs/s, {:.1} vs {:.1} hashes/accepted pair",
        report.sprt_verify.pairs_per_s / report.verify.pairs_per_s.max(1e-12),
        report.sprt_verify.hashes_per_accepted_pair,
        report.verify.hashes_per_accepted_pair,
    );
    for row in &report.end_to_end {
        println!(
            "end-to-end {} / {}: {} ({} pairs)",
            row.preset,
            row.algorithm,
            fmt_secs(row.secs),
            fmt_count(row.pairs)
        );
    }
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        die(&format!("cannot write {out}: {e}"));
    }
    // The subcommand validates what it wrote: CI smoke-tests this path, so
    // a schema regression fails loudly instead of rotting silently.
    match baseline::validate_json(&std::fs::read_to_string(&out).unwrap_or_default()) {
        Ok(()) => println!("wrote {out} (schema OK)"),
        Err(e) => die(&format!("emitted baseline failed schema check: {e}")),
    }
    // With --diff-schema, also hold the emitted keys against a committed
    // baseline so the two cannot drift apart (values may differ; keys are
    // the contract).
    if let Some(committed) = &args.diff_schema {
        let committed_json = std::fs::read_to_string(committed)
            .unwrap_or_else(|e| die(&format!("cannot read {committed}: {e}")));
        match baseline::diff_schema(&committed_json, &json) {
            Ok(()) => println!("schema matches {committed}"),
            Err(e) => die(&e),
        }
    }
    // With --assert-floor, hold the fresh throughputs against a committed
    // baseline: any gated key regressing past the tolerance fails the run
    // (the CI bench-regression job's contract).
    if let Some(committed) = &args.assert_floor {
        let committed_json = std::fs::read_to_string(committed)
            .unwrap_or_else(|e| die(&format!("cannot read {committed}: {e}")));
        match baseline::assert_floor(&committed_json, &json) {
            Ok(lines) => {
                for line in lines {
                    println!("floor OK: {line}");
                }
            }
            Err(e) => die(&e),
        }
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "fig1" => run_fig1(),
        "fig2" => run_fig2(&args),
        "fig3" => {
            run_fig3(&args);
        }
        "fig4" => run_fig4(&args),
        "fig5" => run_fig5(),
        "table1" => run_table1(&args),
        "table2" => {
            let rows = run_fig3(&args);
            run_table2(&rows);
        }
        "table3" => run_table3(&args),
        "table4" => run_table4(&args),
        "table5" => run_table5(&args),
        "parallel" => run_parallel(&args),
        "bench-baseline" => run_bench_baseline(&args),
        "save-index" => run_save_index(&args),
        "serve" => run_serve(&args),
        "inspect-snapshot" => run_inspect_snapshot(&args),
        "shard-build" => run_shard_build(&args),
        "shard-serve" => run_shard_serve(&args),
        "serve-loop" => run_serve_loop(&args),
        "all" => {
            run_parallel(&args);
            run_fig1();
            run_fig5();
            run_table1(&args);
            run_fig4(&args);
            run_fig2(&args);
            run_table5(&args);
            run_table3(&args);
            run_table4(&args);
            let rows = run_fig3(&args);
            run_table2(&rows);
        }
        other => usage_error(&format!("unknown experiment {other:?}")),
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

fn run_fig1() {
    banner("Figure 1: hashes required for delta=gamma=0.05 vs true similarity");
    let rows = fig1::run(0.05, 0.05, 20_000);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.similarity),
                r.hashes.map_or("-".into(), |h| h.to_string()),
            ]
        })
        .collect();
    print!("{}", render_table(&["similarity", "min hashes"], &table));
}

fn run_fig5() {
    banner("Figure 5: posterior convergence from priors x^-3 / uniform / x^3 (cos=0.70)");
    let rows = fig5::run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.n),
                format!("{}", r.m),
                format!("{:.4}", r.max_tv),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["hashes", "matches", "max pairwise TV distance"], &table)
    );
}

fn run_table1(args: &Args) {
    banner(&format!("Table 1: dataset details (scale {})", args.scale));
    let rows = table1::run(args.scale, args.seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{}", r.ours.n_vectors),
                format!("{}", r.ours.dim),
                format!("{:.0}", r.ours.avg_len),
                fmt_count(r.ours.nnz),
                format!("{:.1}", r.ours.len_std),
                format!("{}x{} avg {}", r.paper.0, r.paper.1, r.paper.2),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "dataset",
                "vectors",
                "dims",
                "avg len",
                "nnz",
                "len std",
                "paper shape"
            ],
            &table
        )
    );
}

fn run_fig2(args: &Args) {
    banner("Figure 2: runtime vs gamma/delta/epsilon (LSH+BayesLSH, WikiWords100K-like, t=0.7)");
    let (rows, refs) = params::run(args.scale, args.seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.varied.name().into(),
                format!("{:.2}", r.value),
                fmt_secs(r.secs),
            ]
        })
        .collect();
    print!("{}", render_table(&["varied", "value", "time"], &table));
    for r in &refs {
        println!("reference: {:<12} {}", r.algorithm.name(), fmt_secs(r.secs));
    }
}

fn run_table5(args: &Args) {
    banner("Table 5: output quality vs gamma/delta/epsilon (WikiWords100K-like, t=0.7)");
    let (rows, _) = params::run(args.scale, args.seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.varied.name().into(),
                format!("{:.2}", r.value),
                format!("{:.2}%", 100.0 * r.frac_err_above_005),
                format!("{:.4}", r.mean_err),
                format!("{:.2}%", 100.0 * r.recall),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["varied", "value", "errors > 0.05", "mean error", "recall"],
            &table
        )
    );
}

fn run_fig4(args: &Args) {
    banner("Figure 4: candidates remaining vs hashes examined");
    for c in pruning::run(args.scale, args.seed) {
        println!("{} / {} (output {}):", c.panel, c.source.name(), c.output);
        let interesting: Vec<&(u32, u64)> = c
            .points
            .iter()
            .filter(|(h, _)| [0, 32, 64, 96, 128, 256, 512, 1024, 2048].contains(h))
            .collect();
        for (h, n) in interesting {
            println!("  after {h:>5} hashes: {} candidates", fmt_count(*n));
        }
    }
}

fn run_table3(args: &Args) {
    banner("Table 3: recall (%) of AP+BayesLSH and AP+BayesLSH-Lite");
    let thresholds = [0.5, 0.6, 0.7, 0.8, 0.9];
    let rows = quality::table3(&Preset::ALL, &thresholds, args.scale, args.seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.algorithm.name().into(),
                format!("{:.1}", r.threshold),
                format!("{:.2}", r.recall_pct),
                r.truth_size.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["dataset", "algorithm", "t", "recall %", "truth size"],
            &table
        )
    );
}

fn run_table4(args: &Args) {
    banner("Table 4: % of similarity estimates with error > 0.05");
    let thresholds = [0.5, 0.6, 0.7, 0.8, 0.9];
    let rows = quality::table4(&Preset::ALL, &thresholds, args.scale, args.seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.algorithm.name().into(),
                format!("{:.1}", r.threshold),
                format!("{:.2}", r.pct_err_above_005),
                format!("{:.4}", r.mean_err),
                r.n_estimates.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "dataset",
                "algorithm",
                "t",
                "% err > 0.05",
                "mean err",
                "estimates"
            ],
            &table
        )
    );
}

fn run_parallel(args: &Args) {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    banner(&format!(
        "Parallel all-pairs speedup (RCV1-shaped, t=0.7, scale {}, host cores {host})",
        args.scale
    ));
    let rows = parallel::run(args.scale, args.seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.name().into(),
                r.threads.to_string(),
                fmt_secs(r.build_secs),
                fmt_secs(r.join_secs),
                format!("{:.2}x", r.join_speedup),
                r.output.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "algorithm",
                "threads",
                "build",
                "all-pairs",
                "speedup",
                "output"
            ],
            &table
        )
    );
    println!("output is asserted bit-identical across thread counts");
}

fn run_fig3(args: &Args) -> Vec<timing::TimingRow> {
    let mut all = Vec::new();
    for family in [
        Family::WeightedCosine,
        Family::BinaryJaccard,
        Family::BinaryCosine,
    ] {
        banner(&format!(
            "Figure 3 ({}): total seconds, scale {}",
            family.name(),
            args.scale
        ));
        let rows = timing::run_sweep(family, args.scale, args.seed);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    r.algorithm.name().into(),
                    format!("{:.1}", r.threshold),
                    fmt_secs(r.secs),
                    r.output.to_string(),
                    fmt_count(r.candidates),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["dataset", "algorithm", "t", "time", "output", "candidates"],
                &table
            )
        );
        all.extend(rows);
    }
    all
}

fn run_table2(rows: &[timing::TimingRow]) {
    banner("Table 2: fastest BayesLSH variant and speedups over baselines");
    let t2 = timing::table2_from(rows);
    let fmt_speedup = |s: Option<f64>| s.map_or("-".to_string(), |v| format!("{v:.1}x"));
    let table: Vec<Vec<String>> = t2
        .iter()
        .map(|r| {
            vec![
                r.family.name().into(),
                r.dataset.to_string(),
                r.fastest_variant.name().into(),
                fmt_secs(r.variant_secs),
                fmt_speedup(r.speedup_ap),
                fmt_speedup(r.speedup_lsh),
                fmt_speedup(r.speedup_lsh_approx),
                fmt_speedup(r.speedup_ppjoin),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "family",
                "dataset",
                "fastest variant",
                "time",
                "vs AP",
                "vs LSH",
                "vs LSH-Approx",
                "vs PPJoin+"
            ],
            &table
        )
    );
}
