//! The sharded-serving experiment (`repro shard-build` / `repro
//! shard-serve`).
//!
//! Sharding is the scale-out counterpart of the snapshot economics in
//! [`persist`](crate::persist): one offline builder partitions the
//! corpus and writes N independent snapshots plus a manifest, and a
//! serving node opens the manifest and answers by scatter-gather. This
//! module measures that trade on a preset corpus — partitioned build on
//! one side, scatter-gather serving on the other — with every answer
//! asserted **bit-identical** to a single unsharded searcher while the
//! clock runs, and a hot-swap `reload()` exercised mid-sweep.

use std::path::Path;
use std::time::Instant;

use bayeslsh_core::{Algorithm, Parallelism, PipelineConfig, Searcher};
use bayeslsh_datasets::Preset;
use bayeslsh_shard::{LoadPolicy, PartitionFn, ShardBuilder, ShardedSearcher, MANIFEST_FILE};

/// The build the experiment shards: the paper's flagship composition
/// over an RCV1-shaped corpus at t = 0.7 (same recipe as `save-index`).
fn config() -> PipelineConfig {
    PipelineConfig::cosine(0.7)
}

fn build_single(scale: f64, seed: u64) -> Searcher {
    Searcher::builder(config())
        .algorithm(Algorithm::LshBayesLsh)
        .parallelism(Parallelism::Auto)
        .build(Preset::Rcv1.load(scale, seed))
        .expect("preset corpus and paper config are valid")
}

/// What `repro shard-build` measured.
#[derive(Debug, Clone)]
pub struct ShardBuildReport {
    /// Corpus vectors indexed across all shards.
    pub n_vectors: usize,
    /// Shards built and saved.
    pub n_shards: usize,
    /// Wall time of partition + per-shard builds + snapshot writes.
    pub build_secs: f64,
    /// Total bytes on disk (manifest + every shard snapshot).
    pub bytes: u64,
    /// Vectors per shard, in shard order.
    pub shard_sizes: Vec<u64>,
    /// Path of the manifest that `shard-serve` should open.
    pub manifest_path: String,
}

/// Partition the preset corpus into `n_shards`, build every shard, and
/// persist the shard set (snapshots + manifest) under `dir`.
pub fn shard_build(
    scale: f64,
    seed: u64,
    n_shards: usize,
    dir: &str,
) -> Result<ShardBuildReport, String> {
    let data = Preset::Rcv1.load(scale, seed);
    let n_vectors = data.len();
    let start = Instant::now();
    let manifest = ShardBuilder::new(config())
        .algorithm(Algorithm::LshBayesLsh)
        .shards(n_shards)
        .partition(PartitionFn::Hashed { seed })
        .parallelism(Parallelism::Auto)
        .build_to_dir(&data, Path::new(dir))
        .map_err(|e| e.to_string())?;
    let build_secs = start.elapsed().as_secs_f64();

    let manifest_path = Path::new(dir).join(MANIFEST_FILE);
    let mut bytes = std::fs::metadata(&manifest_path)
        .map_err(|e| e.to_string())?
        .len();
    for entry in &manifest.shards {
        bytes += std::fs::metadata(Path::new(dir).join(&entry.file))
            .map_err(|e| e.to_string())?
            .len();
    }
    Ok(ShardBuildReport {
        n_vectors,
        n_shards: manifest.shard_count(),
        build_secs,
        bytes,
        shard_sizes: manifest.shards.iter().map(|s| s.n_vectors).collect(),
        manifest_path: manifest_path.display().to_string(),
    })
}

/// What `repro shard-serve` measured.
#[derive(Debug, Clone)]
pub struct ShardServeReport {
    /// Corpus vectors served.
    pub n_vectors: usize,
    /// Shards behind the router.
    pub n_shards: usize,
    /// Wall time to open the manifest and eagerly load every shard.
    pub open_secs: f64,
    /// Wall time to rebuild the equivalent single searcher from scratch.
    pub rebuild_secs: f64,
    /// Point queries answered while checking equivalence.
    pub queries: usize,
    /// Total wall time of those queries through scatter-gather.
    pub scatter_secs: f64,
    /// Total wall time of the same queries on the single searcher.
    pub single_secs: f64,
    /// Wall time of the mid-sweep hot-swap `reload()`.
    pub reload_secs: f64,
    /// Generation ordinal after the reload (1 before, 2 after).
    pub generation: u64,
}

/// Open the shard set at `manifest_path`, rebuild the equivalent single
/// searcher from scratch, and sweep point queries through both —
/// asserting the scatter-gather answers (neighbours, similarities,
/// statistics) bit-identical — with a hot-swap `reload()` fired halfway
/// through the sweep, after which serving must continue error-free.
/// `scale`/`seed` must match the `shard-build` invocation; a mismatch
/// is reported, not ignored.
pub fn shard_serve(scale: f64, seed: u64, manifest_path: &str) -> Result<ShardServeReport, String> {
    let start = Instant::now();
    let sharded = ShardedSearcher::open_with(
        Path::new(manifest_path),
        Parallelism::Auto,
        LoadPolicy::Eager,
    )
    .map_err(|e| format!("open: {e}"))?;
    let open_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let single = build_single(scale, seed);
    let rebuild_secs = start.elapsed().as_secs_f64();

    if sharded.len() != single.len() {
        return Err(format!(
            "shard set ({} vectors) does not match a --scale {scale} --seed {seed} rebuild \
             ({} vectors); pass the same arguments as shard-build",
            sharded.len(),
            single.len()
        ));
    }

    let qids: Vec<u32> = (0..single.len() as u32).step_by(7).collect();
    let mut scatter_secs = 0.0;
    let mut single_secs = 0.0;
    let mut reload_secs = 0.0;
    for (i, &qid) in qids.iter().enumerate() {
        // Hot swap halfway through the sweep: in-flight serving must
        // carry on without an error, on the freshly opened generation.
        if i == qids.len() / 2 {
            let start = Instant::now();
            sharded.reload().map_err(|e| format!("reload: {e}"))?;
            reload_secs = start.elapsed().as_secs_f64();
        }
        let q = single.data().vector(qid).clone();
        let start = Instant::now();
        let want = single.query(&q, 0.7).map_err(|e| e.to_string())?;
        single_secs += start.elapsed().as_secs_f64();
        let start = Instant::now();
        let got = sharded.query(&q, 0.7).map_err(|e| e.to_string())?;
        scatter_secs += start.elapsed().as_secs_f64();
        // Scatter-gather probes each shard's own index, so the merged
        // probe count is shards × the single index's; everything else
        // must match bit for bit.
        let mut scaled = want.stats;
        scaled.bucket_probes *= sharded.shard_count() as u64;
        if want.neighbors.len() != got.neighbors.len()
            || want
                .neighbors
                .iter()
                .zip(&got.neighbors)
                .any(|(x, y)| (x.0, x.1.to_bits()) != (y.0, y.1.to_bits()))
            || scaled != got.stats
        {
            return Err(format!("query {qid} diverged between sharded and single"));
        }
    }

    Ok(ShardServeReport {
        n_vectors: single.len(),
        n_shards: sharded.shard_count(),
        open_secs,
        rebuild_secs,
        queries: qids.len(),
        scatter_secs,
        single_secs,
        reload_secs,
        generation: sharded.generation().ordinal(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_build_then_serve_round_trips_on_a_tiny_preset() {
        let dir = std::env::temp_dir().join(format!("bayeslsh-bench-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let built = shard_build(0.0005, 42, 3, &dir_s).unwrap();
        assert_eq!(built.n_shards, 3);
        assert!(built.n_vectors > 0 && built.bytes > 0);
        assert_eq!(
            built.shard_sizes.iter().sum::<u64>(),
            built.n_vectors as u64
        );
        let served = shard_serve(0.0005, 42, &built.manifest_path).unwrap();
        assert_eq!(served.n_vectors, built.n_vectors);
        assert_eq!(served.n_shards, 3);
        assert!(served.queries > 0 && served.open_secs > 0.0);
        // The mid-sweep hot swap ran and bumped the generation.
        assert!(served.reload_secs > 0.0);
        assert_eq!(served.generation, 2);
        // A different seed is a detected mismatch, not silent divergence.
        assert!(shard_serve(0.0005, 43, &built.manifest_path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
