//! **Figure 3** (timing sweeps) and **Table 2** (fastest BayesLSH variant
//! and speedups).
//!
//! The paper times seven algorithms on six tf-idf/cosine datasets
//! (Figures 3a–f) and eight algorithms on the binary versions of the three
//! largest datasets under Jaccard (3g–i) and cosine (3j–l), sweeping the
//! similarity threshold. Table 2 aggregates the same sweeps: total time per
//! algorithm across thresholds, the fastest BayesLSH variant, and its
//! speedup over each baseline.

use bayeslsh_core::{run_algorithm, Algorithm, PipelineConfig};
use bayeslsh_datasets::Preset;
use bayeslsh_lsh::Measure;
use bayeslsh_sparse::Dataset;

/// Which of the paper's three experiment families to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Figures 3(a)–(f): tf-idf weighted vectors, cosine.
    WeightedCosine,
    /// Figures 3(g)–(i): binary vectors, Jaccard.
    BinaryJaccard,
    /// Figures 3(j)–(l): binary vectors, cosine.
    BinaryCosine,
}

impl Family {
    /// Family label used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Family::WeightedCosine => "Tf-Idf, Cosine",
            Family::BinaryJaccard => "Binary, Jaccard",
            Family::BinaryCosine => "Binary, Cosine",
        }
    }

    /// Threshold sweep (paper: cosine 0.5–0.9, Jaccard 0.3–0.7).
    pub fn thresholds(&self) -> &'static [f64] {
        match self {
            Family::BinaryJaccard => &[0.3, 0.4, 0.5, 0.6, 0.7],
            _ => &[0.5, 0.6, 0.7, 0.8, 0.9],
        }
    }

    /// Datasets (paper: all six for weighted; the three largest-nnz for
    /// binary).
    pub fn presets(&self) -> &'static [Preset] {
        match self {
            Family::WeightedCosine => &Preset::ALL,
            _ => &[Preset::WikiWords500K, Preset::Orkut, Preset::Twitter],
        }
    }

    /// Algorithms (PPJoin+ applies only to binary data).
    pub fn algorithms(&self) -> Vec<Algorithm> {
        let mut algos: Vec<Algorithm> = Algorithm::ALL.to_vec();
        if matches!(self, Family::WeightedCosine) {
            algos.retain(|a| *a != Algorithm::PpjoinPlus);
        }
        algos
    }

    /// Target similarity measure.
    pub fn measure(&self) -> Measure {
        match self {
            Family::BinaryJaccard => Measure::Jaccard,
            _ => Measure::Cosine,
        }
    }

    /// Load a preset dataset in this family's representation.
    pub fn load(&self, preset: Preset, scale: f64, seed: u64) -> Dataset {
        match self {
            Family::WeightedCosine => preset.load(scale, seed),
            _ => preset.load_binary(scale, seed),
        }
    }

    /// Pipeline configuration at threshold `t`.
    pub fn config(&self, t: f64, seed: u64) -> PipelineConfig {
        let mut cfg = match self.measure() {
            Measure::Jaccard => PipelineConfig::jaccard(t),
            _ => PipelineConfig::cosine(t),
        };
        cfg.seed = seed;
        cfg
    }
}

/// One timing measurement.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Experiment family.
    pub family: Family,
    /// Dataset name.
    pub dataset: &'static str,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Similarity threshold.
    pub threshold: f64,
    /// Total wall-clock seconds.
    pub secs: f64,
    /// Output pairs.
    pub output: usize,
    /// Candidate pairs (0 for single-phase algorithms).
    pub candidates: u64,
}

/// Run the full sweep for one family.
pub fn run_sweep(family: Family, scale: f64, seed: u64) -> Vec<TimingRow> {
    let mut rows = Vec::new();
    for &preset in family.presets() {
        let data = family.load(preset, scale, seed);
        for &t in family.thresholds() {
            let cfg = family.config(t, seed);
            for algo in family.algorithms() {
                let out = run_algorithm(algo, &data, &cfg);
                rows.push(TimingRow {
                    family,
                    dataset: preset.name(),
                    algorithm: algo,
                    threshold: t,
                    secs: out.total_secs,
                    output: out.pairs.len(),
                    candidates: out.candidates,
                });
            }
        }
    }
    rows
}

/// One Table 2 line: fastest BayesLSH variant for a dataset and its
/// speedups over the baselines.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Experiment family.
    pub family: Family,
    /// Dataset name.
    pub dataset: &'static str,
    /// Fastest BayesLSH variant by total time across thresholds.
    pub fastest_variant: Algorithm,
    /// Its total seconds.
    pub variant_secs: f64,
    /// Speedups vs (AllPairs, LSH, LSH Approx, PPJoin+); `None` if the
    /// baseline was not run for this family.
    pub speedup_ap: Option<f64>,
    /// See [`Table2Row::speedup_ap`].
    pub speedup_lsh: Option<f64>,
    /// See [`Table2Row::speedup_ap`].
    pub speedup_lsh_approx: Option<f64>,
    /// See [`Table2Row::speedup_ap`].
    pub speedup_ppjoin: Option<f64>,
}

const BAYES_VARIANTS: [Algorithm; 4] = [
    Algorithm::ApBayesLsh,
    Algorithm::ApBayesLshLite,
    Algorithm::LshBayesLsh,
    Algorithm::LshBayesLshLite,
];

/// Aggregate sweep rows into Table 2.
pub fn table2_from(rows: &[TimingRow]) -> Vec<Table2Row> {
    use std::collections::BTreeMap;
    // (family name, dataset) -> algorithm -> total secs.
    let mut totals: BTreeMap<(&str, &str), BTreeMap<&str, f64>> = BTreeMap::new();
    let mut meta: BTreeMap<(&str, &str), (Family, &'static str)> = BTreeMap::new();
    for r in rows {
        let key = (r.family.name(), r.dataset);
        *totals
            .entry(key)
            .or_default()
            .entry(r.algorithm.name())
            .or_default() += r.secs;
        meta.insert(key, (r.family, r.dataset));
    }
    let mut out = Vec::new();
    for (key, per_algo) in &totals {
        let (family, dataset) = meta[key];
        let (fastest_variant, variant_secs) = BAYES_VARIANTS
            .iter()
            .filter_map(|a| per_algo.get(a.name()).map(|&s| (*a, s)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("sweep must include the BayesLSH variants");
        let speedup = |a: Algorithm| per_algo.get(a.name()).map(|&s| s / variant_secs);
        out.push(Table2Row {
            family,
            dataset,
            fastest_variant,
            variant_secs,
            speedup_ap: speedup(Algorithm::AllPairs),
            speedup_lsh: speedup(Algorithm::Lsh),
            speedup_lsh_approx: speedup(Algorithm::LshApprox),
            speedup_ppjoin: speedup(Algorithm::PpjoinPlus),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_metadata_matches_paper() {
        assert_eq!(Family::WeightedCosine.presets().len(), 6);
        assert_eq!(Family::BinaryJaccard.presets().len(), 3);
        assert_eq!(Family::WeightedCosine.algorithms().len(), 7);
        assert_eq!(Family::BinaryJaccard.algorithms().len(), 8);
        assert_eq!(
            Family::BinaryJaccard.thresholds(),
            &[0.3, 0.4, 0.5, 0.6, 0.7]
        );
        assert_eq!(
            Family::BinaryCosine.thresholds(),
            &[0.5, 0.6, 0.7, 0.8, 0.9]
        );
        assert_eq!(Family::WeightedCosine.measure(), Measure::Cosine);
        assert_eq!(Family::BinaryJaccard.measure(), Measure::Jaccard);
    }

    #[test]
    fn tiny_sweep_produces_complete_grid() {
        // One dataset, one threshold — just exercise the plumbing.
        let family = Family::BinaryJaccard;
        let data = family.load(Preset::Twitter, 0.002, 3);
        let cfg = family.config(0.5, 3);
        let mut rows = Vec::new();
        for algo in family.algorithms() {
            let out = run_algorithm(algo, &data, &cfg);
            rows.push(TimingRow {
                family,
                dataset: Preset::Twitter.name(),
                algorithm: algo,
                threshold: 0.5,
                secs: out.total_secs.max(1e-9),
                output: out.pairs.len(),
                candidates: out.candidates,
            });
        }
        assert_eq!(rows.len(), 8);
        let t2 = table2_from(&rows);
        assert_eq!(t2.len(), 1);
        let row = &t2[0];
        assert!(BAYES_VARIANTS.contains(&row.fastest_variant));
        assert!(row.speedup_ap.unwrap() > 0.0);
        assert!(row.speedup_ppjoin.is_some());
    }

    #[test]
    fn table2_picks_the_minimum_variant() {
        let mk = |algo: Algorithm, secs: f64| TimingRow {
            family: Family::WeightedCosine,
            dataset: "RCV1",
            algorithm: algo,
            threshold: 0.5,
            secs,
            output: 0,
            candidates: 0,
        };
        let rows = vec![
            mk(Algorithm::AllPairs, 10.0),
            mk(Algorithm::Lsh, 8.0),
            mk(Algorithm::LshApprox, 4.0),
            mk(Algorithm::ApBayesLsh, 2.0),
            mk(Algorithm::ApBayesLshLite, 3.0),
            mk(Algorithm::LshBayesLsh, 1.0),
            mk(Algorithm::LshBayesLshLite, 5.0),
        ];
        let t2 = table2_from(&rows);
        assert_eq!(t2[0].fastest_variant, Algorithm::LshBayesLsh);
        assert!((t2[0].speedup_ap.unwrap() - 10.0).abs() < 1e-12);
        assert!((t2[0].speedup_lsh.unwrap() - 8.0).abs() < 1e-12);
        assert!((t2[0].speedup_lsh_approx.unwrap() - 4.0).abs() < 1e-12);
        assert!(t2[0].speedup_ppjoin.is_none());
    }
}
