//! **Table 3** (recall of the AllPairs+BayesLSH variants) and **Table 4**
//! (fraction of similarity estimates with error > 0.05, LSH Approx vs
//! LSH+BayesLSH).

use bayeslsh_core::pipeline::ground_truth;
use bayeslsh_core::{estimate_errors, recall_against, run_algorithm, Algorithm, PipelineConfig};
use bayeslsh_datasets::Preset;
use bayeslsh_lsh::Measure;

/// One recall measurement (Table 3).
#[derive(Debug, Clone)]
pub struct RecallRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Similarity threshold.
    pub threshold: f64,
    /// Recall against the exact result (percent).
    pub recall_pct: f64,
    /// Size of the exact result set.
    pub truth_size: usize,
}

/// Table 3: recall of AP+BayesLSH and AP+BayesLSH-Lite across datasets and
/// thresholds (weighted cosine, as in the paper).
pub fn table3(presets: &[Preset], thresholds: &[f64], scale: f64, seed: u64) -> Vec<RecallRow> {
    let mut rows = Vec::new();
    for &preset in presets {
        let data = preset.load(scale, seed);
        for &t in thresholds {
            let truth = ground_truth(&data, Measure::Cosine, t);
            let mut cfg = PipelineConfig::cosine(t);
            cfg.seed = seed;
            for algo in [Algorithm::ApBayesLsh, Algorithm::ApBayesLshLite] {
                let out = run_algorithm(algo, &data, &cfg);
                rows.push(RecallRow {
                    dataset: preset.name(),
                    algorithm: algo,
                    threshold: t,
                    recall_pct: 100.0 * recall_against(&truth, &out.pairs),
                    truth_size: truth.len(),
                });
            }
        }
    }
    rows
}

/// One estimate-accuracy measurement (Table 4).
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Similarity threshold.
    pub threshold: f64,
    /// Percentage of emitted estimates with |error| > 0.05.
    pub pct_err_above_005: f64,
    /// Mean absolute estimate error.
    pub mean_err: f64,
    /// Number of estimates.
    pub n_estimates: usize,
}

/// Table 4: estimate-error comparison between LSH Approx and LSH+BayesLSH
/// (weighted cosine).
pub fn table4(presets: &[Preset], thresholds: &[f64], scale: f64, seed: u64) -> Vec<AccuracyRow> {
    let mut rows = Vec::new();
    for &preset in presets {
        let data = preset.load(scale, seed);
        for &t in thresholds {
            let mut cfg = PipelineConfig::cosine(t);
            cfg.seed = seed;
            for algo in [Algorithm::LshApprox, Algorithm::LshBayesLsh] {
                let out = run_algorithm(algo, &data, &cfg);
                let stats = estimate_errors(&out.pairs, &data, Measure::Cosine, 0.05);
                rows.push(AccuracyRow {
                    dataset: preset.name(),
                    algorithm: algo,
                    threshold: t,
                    pct_err_above_005: 100.0 * stats.frac_above,
                    mean_err: stats.mean_abs,
                    n_estimates: stats.n,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_recall_is_high_on_a_small_preset() {
        let rows = table3(&[Preset::Rcv1], &[0.7], 0.0015, 5);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.truth_size > 0, "{}: empty ground truth", r.dataset);
            assert!(
                r.recall_pct >= 90.0,
                "{} {}: recall {}",
                r.dataset,
                r.algorithm,
                r.recall_pct
            );
        }
    }

    #[test]
    fn table4_bayeslsh_estimates_are_accurate() {
        let rows = table4(&[Preset::Rcv1], &[0.6], 0.0015, 6);
        assert_eq!(rows.len(), 2);
        let bayes = rows
            .iter()
            .find(|r| r.algorithm == Algorithm::LshBayesLsh)
            .unwrap();
        assert!(bayes.n_estimates > 0);
        // The (δ=0.05, γ=0.03) contract bounds the error-above-0.05
        // fraction near γ; allow finite-sample slack.
        assert!(
            bayes.pct_err_above_005 <= 12.0,
            "BayesLSH errors > 0.05: {}%",
            bayes.pct_err_above_005
        );
    }
}
