//! **Table 1** — dataset details (vectors, dimensions, average length,
//! non-zeros) for the scaled synthetic stand-ins, side by side with the
//! paper's numbers for the real datasets.

use bayeslsh_datasets::Preset;
use bayeslsh_sparse::DatasetStats;

/// One Table 1 line.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Paper's (vectors, dimensions, average length).
    pub paper: (usize, u32, usize),
    /// Statistics of the scaled synthetic stand-in.
    pub ours: DatasetStats,
}

/// Compute the table at `scale`.
pub fn run(scale: f64, seed: u64) -> Vec<Table1Row> {
    Preset::ALL
        .iter()
        .map(|&p| Table1Row {
            dataset: p.name(),
            paper: p.paper_shape(),
            ours: p.load(scale, seed).stats(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_six_datasets_with_sane_stats() {
        let rows = run(0.002, 17);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.ours.n_vectors >= 300,
                "{}: {}",
                r.dataset,
                r.ours.n_vectors
            );
            assert!(r.ours.avg_len > 1.0);
            assert!(r.ours.nnz > 0);
        }
        // Relative ordering of average lengths mirrors the paper: Twitter
        // longest, WikiLinks shortest.
        let avg = |name: &str| {
            rows.iter()
                .find(|r| r.dataset == name)
                .unwrap()
                .ours
                .avg_len
        };
        assert!(avg("Twitter") > avg("RCV1"));
        assert!(avg("WikiLinks") < avg("RCV1") + 5.0);
    }
}
