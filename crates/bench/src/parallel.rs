//! Parallel speedup measurement: all-pairs wall-clock at increasing thread
//! counts, medium preset, with a built-in bit-identity check so a timing
//! run doubles as an equivalence audit.

use std::time::Instant;

use bayeslsh_core::{Algorithm, PipelineConfig, Searcher};
use bayeslsh_datasets::Preset;
use bayeslsh_numeric::Parallelism;

/// One (algorithm, thread count) measurement.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Worker threads used.
    pub threads: usize,
    /// Seconds to build the searcher (hashing + banding index).
    pub build_secs: f64,
    /// Seconds for the all-pairs join (candidate generation + verification).
    pub join_secs: f64,
    /// Wall-clock speedup of the join versus the 1-thread row.
    pub join_speedup: f64,
    /// Output pairs (identical across thread counts by construction; the
    /// run asserts it).
    pub output: usize,
}

/// Time `all_pairs` for the LSH-based algorithms at thread counts
/// {1, 2, 4, 8} on a medium RCV1-shaped corpus, asserting bit-identical
/// output across thread counts as it goes.
pub fn run(scale: f64, seed: u64) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for algo in [
        Algorithm::Lsh,
        Algorithm::LshBayesLsh,
        Algorithm::LshBayesLshLite,
    ] {
        let mut serial_secs = 0.0;
        let mut serial_pairs: Option<Vec<(u32, u32, u64)>> = None;
        for threads in [1usize, 2, 4, 8] {
            let data = Preset::Rcv1.load(scale, seed);
            let mut cfg = PipelineConfig::cosine(0.7);
            cfg.parallelism = Parallelism::threads(threads as u32);
            let build_start = Instant::now();
            let searcher = Searcher::builder(cfg)
                .algorithm(algo)
                .build(data)
                .expect("valid config");
            let build_secs = build_start.elapsed().as_secs_f64();
            let join_start = Instant::now();
            let out = searcher.all_pairs().expect("composition runs");
            let join_secs = join_start.elapsed().as_secs_f64();

            let bits: Vec<(u32, u32, u64)> = out
                .pairs
                .iter()
                .map(|&(a, b, s)| (a, b, s.to_bits()))
                .collect();
            match &serial_pairs {
                None => {
                    serial_secs = join_secs;
                    serial_pairs = Some(bits);
                }
                Some(expect) => assert_eq!(
                    expect, &bits,
                    "{algo}: parallel output diverged at {threads} threads"
                ),
            }
            rows.push(SpeedupRow {
                algorithm: algo,
                threads,
                build_secs,
                join_secs,
                join_speedup: serial_secs / join_secs.max(1e-12),
                output: out.pairs.len(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rows_are_consistent() {
        let rows = run(0.0004, 7);
        assert_eq!(rows.len(), 12);
        for chunk in rows.chunks(4) {
            let outputs: Vec<usize> = chunk.iter().map(|r| r.output).collect();
            assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
            assert!((chunk[0].join_speedup - 1.0).abs() < 1e-9);
        }
    }
}
