//! **Figure 1** — hashes required for a `(δ, γ)` accuracy guarantee under
//! classical MLE estimation, as a function of the true similarity.
//!
//! Reproduces the paper's Section 3.1 analysis: the minimum `n` such that
//! `Pr[|m/n − s| < δ] ≥ 1 − γ`, computed with exact binomial sums.
//! Similarities near 0.5 need hundreds of hashes; similarities near 0 or 1
//! need almost none — which is why no fixed `n` suits a whole dataset.

use bayeslsh_numeric::binomial::min_hashes_for_concentration;

/// One point of the Figure 1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Row {
    /// True similarity being estimated.
    pub similarity: f64,
    /// Minimum hashes for the accuracy guarantee (None = not reachable
    /// within `max_n`).
    pub hashes: Option<u64>,
}

/// Compute the curve on a similarity grid.
pub fn run(delta: f64, gamma: f64, max_n: u64) -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for i in 1..=19 {
        let s = i as f64 * 0.05;
        rows.push(Fig1Row {
            similarity: s,
            hashes: min_hashes_for_concentration(s, delta, gamma, max_n),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_peak_near_half() {
        let rows = run(0.05, 0.05, 5_000);
        let at = |s: f64| {
            rows.iter()
                .find(|r| (r.similarity - s).abs() < 1e-9)
                .unwrap()
                .hashes
                .unwrap()
        };
        // Paper: "A similarity of 0.5 needs 350 hashes" (approximately —
        // the exact number depends on the rounding convention at the
        // interval endpoints); the curve must peak near 0.5 and collapse at
        // the extremes.
        assert!((250..=450).contains(&at(0.5)), "n(0.5) = {}", at(0.5));
        assert!(at(0.5) > at(0.9), "mid must need more than high");
        assert!(at(0.5) > at(0.1), "mid must need more than low");
        assert!(at(0.95) < 150, "n(0.95) = {}", at(0.95));
    }

    #[test]
    fn rows_cover_grid() {
        let rows = run(0.05, 0.05, 2_000);
        assert_eq!(rows.len(), 19);
        assert!((rows[0].similarity - 0.05).abs() < 1e-12);
        assert!((rows[18].similarity - 0.95).abs() < 1e-12);
    }

    #[test]
    fn stricter_accuracy_needs_more_hashes() {
        let loose = run(0.05, 0.05, 20_000);
        let tight = run(0.02, 0.05, 20_000);
        for (l, t) in loose.iter().zip(&tight) {
            if let (Some(l), Some(t)) = (l.hashes, t.hashes) {
                assert!(t >= l, "s={}: {t} < {l}", loose[0].similarity);
            }
        }
    }
}
