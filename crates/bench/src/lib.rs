//! Experiment harness regenerating every table and figure of the BayesLSH
//! paper (see DESIGN.md §4 for the experiment-by-experiment index).
//!
//! Each module is a library-level experiment returning structured rows so
//! that the logic is unit-testable; the `repro` binary formats them for the
//! terminal. Run with `cargo run --release -p bayeslsh-bench --bin repro --
//! <experiment>`.

pub mod baseline;
pub mod fig1;
pub mod fig5;
pub mod parallel;
pub mod params;
pub mod persist;
pub mod pruning;
pub mod quality;
pub mod report;
pub mod serve_loop;
pub mod shard;
pub mod table1;
pub mod timing;
