//! Terminal table formatting for the experiment runners.

/// Render an aligned text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Human-friendly seconds.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Compact count formatting (1.2e06 style above 100k, plain below).
pub fn fmt_count(n: u64) -> String {
    if n >= 100_000 {
        format!("{:.1e}", n as f64)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
        // The value column starts at the same offset in every row.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].as_bytes()[col] as char, '1');
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(0.000002), "2us");
        assert_eq!(fmt_secs(0.25), "250.0ms");
        assert_eq!(fmt_secs(3.2), "3.20s");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(42), "42");
        assert_eq!(fmt_count(5_000_000), "5.0e6");
    }
}
