//! The machine-readable performance baseline (`repro bench-baseline`).
//!
//! The paper's Observation 3 names hashing as the dominant BayesLSH cost;
//! this module measures it directly and writes `BENCH_<n>.json` so later
//! PRs have a trajectory to regress against. Three measurements:
//!
//! 1. **SRP hashing microbench** — the historical plane-major scalar path
//!    (reconstructed here, byte-for-byte, from the pure
//!    [`bayeslsh_lsh::generate_plane`] streams) versus the feature-major
//!    bank kernel, in components/s, with the outputs asserted
//!    bit-identical.
//! 2. **MinHash microbench** — the hash-major scalar path (one
//!    [`bayeslsh_lsh::MinHasher::hash_ready`] walk per slot) versus the
//!    element-major range kernel.
//! 3. **Verification throughput** — cold-pool pairs/s through
//!    `bayes_verify` (lazy hashing included), plus a **batched-verify** row
//!    timing the steady-state path alone: signatures pre-extended, then the
//!    run-major batched engine counts agreements through the word-parallel
//!    XOR + popcount kernels — the popcount-bound ceiling of the system.
//! 4. **SPRT verification throughput** — the same cold-pool workload
//!    through the sequential-test verifier, whose early accept/prune
//!    boundaries and shallow signature cap buy both fewer hash
//!    comparisons per accepted pair and less lazy hashing than the fixed
//!    concentration schedule. Every verify row also reports
//!    `hashes_per_accepted_pair`, the adaptive-verification cost metric.
//! 5. **E2LSH hashing microbench** — the per-slot scalar gather
//!    ([`bayeslsh_lsh::E2lshHasher::hash_ready`]) versus the feature-major
//!    projection kernel, outputs asserted bucket-identical.
//! 6. **Multi-probe query throughput** — a standing cosine `Searcher`
//!    answering point queries with the full step-wise per-band probe
//!    budget, in queries/s, with the probe accounting asserted first.
//! 7. **End-to-end all-pairs wall time** per preset.
//!
//! Everything is returned as structured rows; JSON serialization, the
//! schema check the CI smoke job runs, and the [`assert_floor`] regression
//! gate are hand-rolled (the workspace has no serde).

use std::time::Instant;

use bayeslsh_core::{
    bayes_verify, candidate_ids, par_bayes_verify, run_algorithm, sprt_verify, Algorithm,
    BayesLshConfig, CosineModel, PipelineConfig, Searcher,
};
use bayeslsh_datasets::{generate, CorpusConfig, Preset};
use bayeslsh_lsh::{
    cos_to_r, generate_plane, quantized, r_to_cos, BitSignatures, E2lshHasher, MinHasher, SrpHasher,
};
use bayeslsh_sparse::{cosine, Dataset, SparseVector};

/// One side of a kernel comparison.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Hash components processed per pass (Σ nnz(v) · hashes).
    pub components: u64,
    /// Best-of-reps wall time for one pass.
    pub secs: f64,
    /// `components / secs`.
    pub per_s: f64,
}

/// Scalar-versus-kernel microbench result.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// The pre-PR scalar (hash-major) path.
    pub scalar: Throughput,
    /// The feature-/element-major kernel.
    pub kernel: Throughput,
    /// `kernel.per_s / scalar.per_s`.
    pub speedup: f64,
}

/// Verification throughput through the BayesLSH engine.
#[derive(Debug, Clone)]
pub struct VerifyBench {
    /// Candidate pairs fed in.
    pub pairs: u64,
    /// Wall time of the verify call (hashing included, pool cold).
    pub secs: f64,
    /// `pairs / secs`.
    pub pairs_per_s: f64,
    /// Hash comparisons performed (pruning effectiveness context).
    pub hash_comparisons: u64,
    /// Hash comparisons per accepted pair — the adaptive-verification cost
    /// metric (0.0 when nothing was accepted).
    pub hashes_per_accepted_pair: f64,
}

/// Point-query throughput through the step-wise multi-probe path.
#[derive(Debug, Clone)]
pub struct QueryBench {
    /// Point queries issued per pass.
    pub queries: u64,
    /// Best-of-reps wall time for one pass.
    pub secs: f64,
    /// `queries / secs`.
    pub queries_per_s: f64,
    /// Bucket lookups per pass (bands × probe budget × queries).
    pub bucket_probes: u64,
}

/// End-to-end all-pairs wall time for one preset.
#[derive(Debug, Clone)]
pub struct EndToEndRow {
    /// Preset name.
    pub preset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Total wall-clock seconds.
    pub secs: f64,
    /// Output pairs found.
    pub pairs: u64,
}

/// The full baseline report.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Dataset scale factor the verify/end-to-end sections used.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Host CPU cores visible to the process.
    pub cores: usize,
    /// SRP microbench (quantized storage, the default).
    pub srp: KernelBench,
    /// MinHash microbench.
    pub minhash: KernelBench,
    /// E2LSH p-stable projection microbench.
    pub e2lsh_hash: KernelBench,
    /// Step-wise multi-probe point-query throughput.
    pub multiprobe_query: QueryBench,
    /// BayesLSH verification throughput (cold pool, hashing included).
    pub verify: VerifyBench,
    /// Steady-state batched verification throughput (pool pre-extended, so
    /// the engine is pure agreement counting + posterior arithmetic).
    pub verify_batched: VerifyBench,
    /// SPRT sequential-test verification throughput (cold pool, hashing
    /// included — directly comparable to `verify`).
    pub sprt_verify: VerifyBench,
    /// End-to-end preset timings.
    pub end_to_end: Vec<EndToEndRow>,
}

/// The historical plane-major SRP layout, kept verbatim as the measured
/// "before": one `Vec<u16>` per plane, and a per-bit loop gathering one
/// component per nonzero — `h × nnz` random gathers per signature.
struct ScalarSrp {
    planes: Vec<Vec<u16>>,
}

impl ScalarSrp {
    fn new(dim: u32, seed: u64, n: usize) -> Self {
        let planes = (0..n)
            .map(|i| quantized::encode_slice(&generate_plane(dim, seed, i)))
            .collect();
        Self { planes }
    }

    /// The pre-PR `hash_bits_into` body, including its per-word
    /// `push(0)`-inside-the-bit-loop growth.
    fn hash_bits_into(&self, v: &SparseVector, lo: u32, hi: u32, words: &mut Vec<u32>) {
        for i in lo..hi {
            let word_idx = (i / 32) as usize;
            if word_idx >= words.len() {
                words.push(0);
            }
            let plane = &self.planes[i as usize];
            let mut acc = 0.0f64;
            for (idx, val) in v.iter() {
                acc += quantized::decode(plane[idx as usize]) as f64 * val as f64;
            }
            if acc >= 0.0 {
                words[word_idx] |= 1u32 << (i % 32);
            }
        }
    }
}

/// Best-of-`reps` wall time of one full pass.
fn best_of(reps: usize, mut pass: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

const SRP_DIM: u32 = 8_192;
const SRP_VECTORS: usize = 256;
const SRP_BITS: u32 = 512;
const MH_HASHES: u32 = 256;
const E2_HASHES: u32 = 256;
const REPS: usize = 5;

fn micro_corpus(seed: u64) -> Dataset {
    generate(&CorpusConfig {
        n_vectors: SRP_VECTORS,
        dim: SRP_DIM,
        avg_len: 100,
        seed,
        ..CorpusConfig::default()
    })
}

/// SRP microbench: scalar plane-major vs feature-major kernel, quantized
/// storage. Panics if the two paths ever disagree on a bit — the baseline
/// doubles as an end-to-end bit-identity check.
pub fn srp_bench(seed: u64) -> KernelBench {
    let data = micro_corpus(seed);
    let hash_seed = seed ^ 0x5157;
    let scalar = ScalarSrp::new(SRP_DIM, hash_seed, SRP_BITS as usize);
    let mut hasher = SrpHasher::new(SRP_DIM, hash_seed);
    hasher.ensure_planes(SRP_BITS as usize);

    let components: u64 = data
        .vectors()
        .iter()
        .map(|v| v.nnz() as u64 * SRP_BITS as u64)
        .sum();

    // Bit-identity first: the kernel must reproduce the scalar layout.
    for (_, v) in data.iter() {
        let mut old = Vec::new();
        scalar.hash_bits_into(v, 0, SRP_BITS, &mut old);
        let mut new = Vec::new();
        hasher.hash_bits_into(v, 0, SRP_BITS, &mut new);
        assert_eq!(old, new, "kernel diverged from the scalar plane-major path");
    }

    let mut sink = 0u32;
    let scalar_secs = best_of(REPS, || {
        for (_, v) in data.iter() {
            let mut words = Vec::new();
            scalar.hash_bits_into(v, 0, SRP_BITS, &mut words);
            sink ^= words[0];
        }
    });
    let kernel_secs = best_of(REPS, || {
        for (_, v) in data.iter() {
            let mut words = Vec::new();
            hasher.hash_bits_into(v, 0, SRP_BITS, &mut words);
            sink ^= words[0];
        }
    });
    std::hint::black_box(sink);
    bench_result(components, scalar_secs, kernel_secs)
}

/// MinHash microbench: hash-major scalar vs element-major kernel.
pub fn minhash_bench(seed: u64) -> KernelBench {
    let data = micro_corpus(seed).binarized();
    let mut hasher = MinHasher::new(seed ^ 0x31A5);
    hasher.ensure_functions(MH_HASHES as usize);

    let components: u64 = data
        .vectors()
        .iter()
        .map(|v| v.nnz() as u64 * MH_HASHES as u64)
        .sum();

    for (_, v) in data.iter() {
        let old: Vec<u32> = (0..MH_HASHES)
            .map(|i| hasher.hash_ready(i as usize, v))
            .collect();
        let new = hasher.hash_range_packed(v, 0, MH_HASHES);
        assert_eq!(old, new, "kernel diverged from the scalar hash-major path");
    }

    let mut sink = 0u32;
    let scalar_secs = best_of(REPS, || {
        for (_, v) in data.iter() {
            let mut out = Vec::new();
            for i in 0..MH_HASHES {
                out.push(hasher.hash_ready(i as usize, v));
            }
            sink ^= out[0];
        }
    });
    let kernel_secs = best_of(REPS, || {
        for (_, v) in data.iter() {
            let mut out = Vec::new();
            hasher.hash_range_into(v, 0, MH_HASHES, &mut out);
            sink ^= out[0];
        }
    });
    std::hint::black_box(sink);
    bench_result(components, scalar_secs, kernel_secs)
}

/// E2LSH microbench: the per-slot scalar gather (`hash_ready`, one bank
/// stride walk per bucket) vs the feature-major projection kernel, over
/// weighted vectors at the default L2 bucket width. Panics if the two
/// paths ever disagree on a bucket — like the SRP row, the baseline
/// doubles as a bit-identity check.
pub fn e2lsh_bench(seed: u64) -> KernelBench {
    let data = micro_corpus(seed);
    let mut hasher = E2lshHasher::new(SRP_DIM, seed ^ 0x72E2, 4.0);
    hasher.ensure_functions(E2_HASHES as usize);

    let components: u64 = data
        .vectors()
        .iter()
        .map(|v| v.nnz() as u64 * E2_HASHES as u64)
        .sum();

    for (_, v) in data.iter() {
        let old: Vec<u32> = (0..E2_HASHES)
            .map(|i| hasher.hash_ready(i as usize, v))
            .collect();
        let mut new = Vec::new();
        hasher.hash_range_into(v, 0, E2_HASHES, &mut new);
        assert_eq!(old, new, "kernel diverged from the scalar per-slot path");
    }

    let mut sink = 0u32;
    let scalar_secs = best_of(REPS, || {
        for (_, v) in data.iter() {
            let mut out = Vec::new();
            for i in 0..E2_HASHES {
                out.push(hasher.hash_ready(i as usize, v));
            }
            sink ^= out[0];
        }
    });
    let kernel_secs = best_of(REPS, || {
        for (_, v) in data.iter() {
            let mut out = Vec::new();
            hasher.hash_range_into(v, 0, E2_HASHES, &mut out);
            sink ^= out[0];
        }
    });
    std::hint::black_box(sink);
    bench_result(components, scalar_secs, kernel_secs)
}

/// Multi-probe query throughput: a standing cosine `Searcher` (LSH
/// banding × exact, paper-default plan) answering point queries with the
/// full per-band flip budget (`band_width + 1` probes per band). The
/// probe accounting is asserted before timing, so the row cannot
/// silently fall back to the single-probe path.
pub fn multiprobe_query_bench(scale: f64, seed: u64) -> QueryBench {
    let data = Preset::Rcv1.load(scale, seed);
    let mut cfg = PipelineConfig::cosine(0.7);
    cfg.probes = cfg.band_width as usize + 1;
    let searcher = Searcher::builder(cfg)
        .algorithm(Algorithm::Lsh)
        .build(data.clone())
        .expect("valid config");
    let bands = searcher.banding_plan().params.l as u64;
    let step = (data.len() / 256).max(1);
    let queries: Vec<SparseVector> = (0..data.len() as u32)
        .step_by(step)
        .map(|id| data.vector(id).clone())
        .collect();

    let mut bucket_probes = 0u64;
    for q in &queries {
        let out = searcher.query(q, 0.7).expect("in-range threshold");
        assert_eq!(
            out.stats.bucket_probes,
            bands * cfg.probes as u64,
            "multi-probe accounting"
        );
        bucket_probes += out.stats.bucket_probes;
    }

    let mut sink = 0usize;
    let secs = best_of(REPS, || {
        for q in &queries {
            sink ^= searcher.query(q, 0.7).unwrap().neighbors.len();
        }
    });
    std::hint::black_box(sink);
    QueryBench {
        queries: queries.len() as u64,
        secs,
        queries_per_s: queries.len() as f64 / secs.max(1e-12),
        bucket_probes,
    }
}

fn bench_result(components: u64, scalar_secs: f64, kernel_secs: f64) -> KernelBench {
    let scalar = Throughput {
        components,
        secs: scalar_secs,
        per_s: components as f64 / scalar_secs.max(1e-12),
    };
    let kernel = Throughput {
        components,
        secs: kernel_secs,
        per_s: components as f64 / kernel_secs.max(1e-12),
    };
    let speedup = kernel.per_s / scalar.per_s.max(1e-12);
    KernelBench {
        scalar,
        kernel,
        speedup,
    }
}

/// The all-pairs candidate set both verify rows run over: a scaled
/// WikiWords100K-like corpus, first 600 vectors, t = 0.7.
fn verify_workload(scale: f64, seed: u64) -> (Dataset, Vec<(u32, u32)>, BayesLshConfig) {
    let data = Preset::WikiWords100K.load(scale, seed);
    let n = data.len().min(600) as u32;
    let candidates: Vec<(u32, u32)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .collect();
    (data, candidates, BayesLshConfig::cosine(0.7))
}

/// Verification throughput: `bayes_verify` over the all-pairs candidate
/// set, cold pool (lazy hashing cost included, as in the paper's
/// accounting). Gaussian plane *generation* is excluded — planes are a
/// one-time index-build cost every production path pays at
/// `SearcherBuilder::build`, not per verification.
pub fn verify_bench(scale: f64, seed: u64) -> VerifyBench {
    let (data, candidates, cfg) = verify_workload(scale, seed);
    let depth = (cfg.max_hashes / cfg.k).max(1) * cfg.k;
    let mut hasher = SrpHasher::new(data.dim(), seed ^ 0xBE7);
    hasher.ensure_planes(depth as usize);
    let mut pool = BitSignatures::new(hasher, data.len());
    let start = Instant::now();
    let (_, stats) = bayes_verify(&data, &mut pool, &CosineModel::new(), &candidates, &cfg);
    let secs = start.elapsed().as_secs_f64();
    VerifyBench {
        pairs: candidates.len() as u64,
        secs,
        pairs_per_s: candidates.len() as f64 / secs.max(1e-12),
        hash_comparisons: stats.hash_comparisons,
        hashes_per_accepted_pair: stats.hashes_per_accepted_pair(),
    }
}

/// SPRT verification throughput: the sequential-test verifier over the
/// identical cold-pool workload as [`verify_bench`] — same corpus, same
/// candidate set, same threshold, signatures hashed lazily as chunks are
/// demanded. The SPRT's Wald boundaries decide most pairs within a few
/// 32-hash chunks and its signature cap is a quarter of the Bayesian
/// schedule's, so both the hashing bill and the per-pair comparison count
/// drop; undecided pairs at the cap fall back to one exact similarity.
pub fn sprt_verify_bench(scale: f64, seed: u64) -> VerifyBench {
    let (data, candidates, _) = verify_workload(scale, seed);
    let cfg = PipelineConfig::cosine(0.7).sprt();
    let depth = (cfg.max_hashes / cfg.k).max(1) * cfg.k;
    let mut hasher = SrpHasher::new(data.dim(), seed ^ 0xBE7);
    hasher.ensure_planes(depth as usize);
    let mut pool = BitSignatures::new(hasher, data.len());
    let start = Instant::now();
    let (_, stats) = sprt_verify(
        &data,
        &mut pool,
        &candidates,
        &cfg,
        cos_to_r,
        r_to_cos,
        |a: &SparseVector, b: &SparseVector| cosine(a, b),
    );
    let secs = start.elapsed().as_secs_f64();
    VerifyBench {
        pairs: candidates.len() as u64,
        secs,
        pairs_per_s: candidates.len() as f64 / secs.max(1e-12),
        hash_comparisons: stats.hash_comparisons,
        hashes_per_accepted_pair: stats.hashes_per_accepted_pair(),
    }
}

/// Steady-state verification throughput: every candidate signature is
/// pre-extended to the scan depth, then the run-major batched engine
/// (`par_bayes_verify` at one thread — the exact serial decision sequence,
/// read-only pool) is timed alone. This is the popcount-bound ceiling the
/// word-parallel kernels buy; best-of-reps since the pass is repeatable.
pub fn verify_batched_bench(scale: f64, seed: u64) -> VerifyBench {
    let (data, candidates, cfg) = verify_workload(scale, seed);
    let depth = (cfg.max_hashes / cfg.k).max(1) * cfg.k;
    let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), seed ^ 0xBE7), data.len());
    let ids = candidate_ids(&candidates, data.len());
    pool.par_ensure_ids(&data, &ids, depth, 1);
    let model = CosineModel::new();
    let mut hash_comparisons = 0u64;
    let mut hashes_per_accepted_pair = 0.0f64;
    let secs = best_of(REPS, || {
        let (pairs, stats) = par_bayes_verify(&pool, &model, &candidates, &cfg, 1);
        std::hint::black_box(pairs.len());
        hash_comparisons = stats.hash_comparisons;
        hashes_per_accepted_pair = stats.hashes_per_accepted_pair();
    });
    VerifyBench {
        pairs: candidates.len() as u64,
        secs,
        pairs_per_s: candidates.len() as f64 / secs.max(1e-12),
        hash_comparisons,
        hashes_per_accepted_pair,
    }
}

/// End-to-end all-pairs wall time per preset (LSH + BayesLSH, cosine).
pub fn end_to_end(scale: f64, seed: u64) -> Vec<EndToEndRow> {
    [Preset::Rcv1, Preset::WikiWords100K]
        .iter()
        .map(|preset| {
            let data = preset.load(scale, seed);
            let cfg = bayeslsh_core::PipelineConfig::cosine(0.7);
            let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
            EndToEndRow {
                preset: preset.name().to_string(),
                algorithm: Algorithm::LshBayesLsh.name().to_string(),
                secs: out.total_secs,
                pairs: out.pairs.len() as u64,
            }
        })
        .collect()
}

/// Run the full baseline.
pub fn run(scale: f64, seed: u64) -> BaselineReport {
    BaselineReport {
        scale,
        seed,
        cores: std::thread::available_parallelism().map_or(1, |c| c.get()),
        srp: srp_bench(seed),
        minhash: minhash_bench(seed),
        e2lsh_hash: e2lsh_bench(seed),
        multiprobe_query: multiprobe_query_bench(scale, seed),
        verify: verify_bench(scale, seed),
        verify_batched: verify_batched_bench(scale, seed),
        sprt_verify: sprt_verify_bench(scale, seed),
        end_to_end: end_to_end(scale, seed),
    }
}

fn json_verify(b: &VerifyBench) -> String {
    format!(
        concat!(
            "{{\"pairs\": {}, \"secs\": {:.4}, \"pairs_per_s\": {:.1}, ",
            "\"hash_comparisons\": {}, \"hashes_per_accepted_pair\": {:.1}}}"
        ),
        b.pairs, b.secs, b.pairs_per_s, b.hash_comparisons, b.hashes_per_accepted_pair
    )
}

fn json_query(b: &QueryBench) -> String {
    format!(
        concat!(
            "{{\"queries\": {}, \"secs\": {:.4}, \"queries_per_s\": {:.1}, ",
            "\"bucket_probes\": {}}}"
        ),
        b.queries, b.secs, b.queries_per_s, b.bucket_probes
    )
}

fn json_kernel(b: &KernelBench) -> String {
    format!(
        concat!(
            "{{\"components\": {}, ",
            "\"scalar_components_per_s\": {:.1}, ",
            "\"kernel_components_per_s\": {:.1}, ",
            "\"scalar_secs\": {:.6}, \"kernel_secs\": {:.6}, ",
            "\"speedup\": {:.3}}}"
        ),
        b.scalar.components,
        b.scalar.per_s,
        b.kernel.per_s,
        b.scalar.secs,
        b.kernel.secs,
        b.speedup
    )
}

impl BaselineReport {
    /// Serialize to the `BENCH_<n>.json` schema (see [`validate_json`]).
    pub fn to_json(&self) -> String {
        let e2e: Vec<String> = self
            .end_to_end
            .iter()
            .map(|r| {
                format!(
                    "    {{\"preset\": \"{}\", \"algorithm\": \"{}\", \"secs\": {:.4}, \"pairs\": {}}}",
                    r.preset, r.algorithm, r.secs, r.pairs
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"bayeslsh-bench-baseline-v4\",\n",
                "  \"scale\": {},\n",
                "  \"seed\": {},\n",
                "  \"cores\": {},\n",
                "  \"srp\": {},\n",
                "  \"minhash\": {},\n",
                "  \"e2lsh_hash\": {},\n",
                "  \"multiprobe_query\": {},\n",
                "  \"verify\": {},\n",
                "  \"verify_batched\": {},\n",
                "  \"sprt_verify\": {},\n",
                "  \"end_to_end\": [\n{}\n  ]\n",
                "}}\n"
            ),
            self.scale,
            self.seed,
            self.cores,
            json_kernel(&self.srp),
            json_kernel(&self.minhash),
            json_kernel(&self.e2lsh_hash),
            json_query(&self.multiprobe_query),
            json_verify(&self.verify),
            json_verify(&self.verify_batched),
            json_verify(&self.sprt_verify),
            e2e.join(",\n")
        )
    }
}

/// Extract the number following `"key":` anywhere in `s`.
fn json_number(s: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = s.find(&needle)? + needle.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The flat object following `section` (e.g. `"\"verify\":"`), bounded at
/// its closing brace — the kernel and verify sections never nest, so a key
/// looked up here cannot be satisfied by an identically-named key in a
/// later section.
fn section_slice<'a>(s: &'a str, section: &str) -> Option<&'a str> {
    let at = s.find(section)?;
    let end = s[at..].find('}').map_or(s.len(), |e| at + e + 1);
    Some(&s[at..end])
}

/// The throughput keys the CI `bench-regression` job holds the line on, as
/// `(section, key)` pairs scoped exactly like [`validate_json`].
const FLOOR_KEYS: [(&str, &str); 7] = [
    ("\"srp\":", "kernel_components_per_s"),
    ("\"minhash\":", "kernel_components_per_s"),
    ("\"e2lsh_hash\":", "kernel_components_per_s"),
    ("\"multiprobe_query\":", "queries_per_s"),
    ("\"verify\":", "pairs_per_s"),
    ("\"verify_batched\":", "pairs_per_s"),
    ("\"sprt_verify\":", "pairs_per_s"),
];

/// Fraction of a committed throughput a fresh run must retain. CI runners
/// are noisy; 0.6 (i.e. a > 40% regression fails) separates real kernel
/// regressions from scheduling jitter on these rows, all of which are
/// best-of-reps or multi-second passes.
pub const FLOOR_TOLERANCE: f64 = 0.6;

/// Perf-regression gate (`repro bench-baseline --assert-floor PATH`): every
/// throughput in `FLOOR_KEYS` of the fresh emit must reach
/// [`FLOOR_TOLERANCE`] × the committed value. Returns one human-readable
/// margin line per key on success, so the CI log shows each kernel's
/// headroom; a violated floor fails with measured-vs-required numbers.
pub fn assert_floor(committed: &str, fresh: &str) -> Result<Vec<String>, String> {
    let mut lines = Vec::new();
    for (section, key) in FLOOR_KEYS {
        let base = section_slice(committed, section)
            .and_then(|sub| json_number(sub, key))
            .ok_or_else(|| format!("committed baseline: missing {section} {key}"))?;
        let got = section_slice(fresh, section)
            .and_then(|sub| json_number(sub, key))
            .ok_or_else(|| format!("fresh baseline: missing {section} {key}"))?;
        let floor = base * FLOOR_TOLERANCE;
        if got < floor {
            return Err(format!(
                "perf regression: {section} {key} = {got:.3e} is below the floor {floor:.3e} \
                 ({FLOOR_TOLERANCE} x committed {base:.3e})"
            ));
        }
        lines.push(format!(
            "{section} {key}: {got:.3e} vs committed {base:.3e} ({:+.1}%)",
            (got / base - 1.0) * 100.0
        ));
    }
    Ok(lines)
}

/// Schema check for an emitted baseline: required keys present, throughputs
/// strictly positive. This is what the CI smoke job (and the subcommand
/// itself, before declaring success) runs, so the perf-reporting pipeline
/// cannot silently rot.
pub fn validate_json(s: &str) -> Result<(), String> {
    if !s.contains("\"schema\": \"bayeslsh-bench-baseline-v4\"") {
        return Err("missing or wrong schema marker".into());
    }
    for section in [
        "\"srp\":",
        "\"minhash\":",
        "\"e2lsh_hash\":",
        "\"multiprobe_query\":",
        "\"verify\":",
        "\"verify_batched\":",
        "\"sprt_verify\":",
        "\"end_to_end\":",
    ] {
        if !s.contains(section) {
            return Err(format!("missing section {section}"));
        }
    }
    // Positional check: both kernel sections carry their own keys; verify
    // each occurrence by scanning per-section substrings.
    for (section, keys) in [
        (
            "\"srp\":",
            &[
                "scalar_components_per_s",
                "kernel_components_per_s",
                "speedup",
            ][..],
        ),
        (
            "\"minhash\":",
            &[
                "scalar_components_per_s",
                "kernel_components_per_s",
                "speedup",
            ][..],
        ),
        (
            "\"e2lsh_hash\":",
            &[
                "scalar_components_per_s",
                "kernel_components_per_s",
                "speedup",
            ][..],
        ),
        (
            "\"multiprobe_query\":",
            &["queries_per_s", "bucket_probes"][..],
        ),
        ("\"verify\":", &["pairs_per_s"][..]),
        ("\"verify_batched\":", &["pairs_per_s"][..]),
        ("\"sprt_verify\":", &["pairs_per_s"][..]),
    ] {
        let sub = section_slice(s, section).ok_or_else(|| format!("missing section {section}"))?;
        for key in keys {
            match json_number(sub, key) {
                Some(v) if v > 0.0 => {}
                Some(v) => return Err(format!("{section} {key} = {v}, expected > 0")),
                None => return Err(format!("{section} missing numeric {key}")),
            }
        }
    }
    // The adaptive-cost metric rides on every verify row; zero is legal
    // (nothing accepted) but absence is schema rot.
    for section in ["\"verify\":", "\"verify_batched\":", "\"sprt_verify\":"] {
        let sub = section_slice(s, section).ok_or_else(|| format!("missing section {section}"))?;
        match json_number(sub, "hashes_per_accepted_pair") {
            Some(v) if v >= 0.0 => {}
            Some(v) => return Err(format!("{section} hashes_per_accepted_pair = {v} < 0")),
            None => return Err(format!("{section} missing hashes_per_accepted_pair")),
        }
    }
    if !s.contains("\"preset\":") {
        return Err("end_to_end has no rows".into());
    }
    Ok(())
}

/// Every distinct `"key":` name occurring in a baseline JSON document —
/// the schema fingerprint the drift check compares.
pub fn schema_keys(s: &str) -> std::collections::BTreeSet<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while let Some(open) = s[i..].find('"') {
        let start = i + open + 1;
        let Some(close) = s[start..].find('"') else {
            break;
        };
        let end = start + close;
        // A quoted string is a key iff the next non-space byte is ':'.
        let mut j = end + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b':' {
            keys.insert(s[start..end].to_string());
        }
        i = end + 1;
    }
    keys
}

/// Compare the schema (key set) of a committed baseline against a freshly
/// emitted one, so the committed `BENCH_<n>.json` and the emitter cannot
/// drift apart silently. Values are expected to differ (different hosts,
/// different runs); the *keys* are the contract.
pub fn diff_schema(committed: &str, fresh: &str) -> Result<(), String> {
    let (a, b) = (schema_keys(committed), schema_keys(fresh));
    let missing: Vec<&String> = a.difference(&b).collect();
    let added: Vec<&String> = b.difference(&a).collect();
    if missing.is_empty() && added.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "baseline schema drift: keys only in committed file: {missing:?}; \
             keys only in fresh emit: {added:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BaselineReport {
        let t = |per_s: f64| Throughput {
            components: 1000,
            secs: 0.5,
            per_s,
        };
        BaselineReport {
            scale: 0.001,
            seed: 42,
            cores: 1,
            srp: KernelBench {
                scalar: t(100.0),
                kernel: t(250.0),
                speedup: 2.5,
            },
            minhash: KernelBench {
                scalar: t(10.0),
                kernel: t(30.0),
                speedup: 3.0,
            },
            e2lsh_hash: KernelBench {
                scalar: t(40.0),
                kernel: t(120.0),
                speedup: 3.0,
            },
            multiprobe_query: QueryBench {
                queries: 64,
                secs: 0.02,
                queries_per_s: 3200.0,
                bucket_probes: 4096,
            },
            verify: VerifyBench {
                pairs: 10,
                secs: 0.1,
                pairs_per_s: 100.0,
                hash_comparisons: 320,
                hashes_per_accepted_pair: 64.0,
            },
            verify_batched: VerifyBench {
                pairs: 10,
                secs: 0.01,
                pairs_per_s: 1000.0,
                hash_comparisons: 320,
                hashes_per_accepted_pair: 64.0,
            },
            sprt_verify: VerifyBench {
                pairs: 10,
                secs: 0.05,
                pairs_per_s: 200.0,
                hash_comparisons: 160,
                hashes_per_accepted_pair: 32.0,
            },
            end_to_end: vec![EndToEndRow {
                preset: "RCV1".into(),
                algorithm: "LSH+BayesLSH".into(),
                secs: 0.2,
                pairs: 3,
            }],
        }
    }

    #[test]
    fn emitted_json_round_trips_the_validator() {
        let json = sample_report().to_json();
        validate_json(&json).expect("schema check");
        assert!((json_number(&json, "speedup").unwrap() - 2.5).abs() < 1e-9);
        assert!((json_number(&json, "pairs_per_s").unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn validator_rejects_broken_payloads() {
        assert!(validate_json("{}").is_err());
        let mut r = sample_report();
        r.srp.scalar.per_s = 0.0;
        assert!(validate_json(&r.to_json()).is_err());
        let json = sample_report().to_json().replace("\"verify\":", "\"v\":");
        assert!(validate_json(&json).is_err());
        // A key missing from the srp section must not be satisfied by the
        // identically-named key in the later minhash section.
        let json = sample_report()
            .to_json()
            .replacen("\"speedup\"", "\"sp\"", 1);
        assert!(validate_json(&json).is_err());
    }

    #[test]
    fn schema_diff_accepts_value_changes_and_rejects_key_changes() {
        let a = sample_report().to_json();
        let mut r = sample_report();
        r.scale = 0.5;
        r.verify.pairs_per_s = 1.0;
        let b = r.to_json();
        diff_schema(&a, &b).expect("value-only changes are not drift");
        let c = a.replace("\"hash_comparisons\"", "\"hash_cmps\"");
        let err = diff_schema(&a, &c).unwrap_err();
        assert!(err.contains("hash_comparisons") && err.contains("hash_cmps"));
        // String *values* (e.g. preset names) are not keys.
        assert!(!schema_keys(&a).contains("RCV1"));
        assert!(schema_keys(&a).contains("end_to_end"));
    }

    #[test]
    fn floor_gate_passes_healthy_runs_and_fails_regressions() {
        let committed = sample_report().to_json();
        // A healthy fresh run (identical numbers) passes with one margin
        // line per gated key.
        let lines = assert_floor(&committed, &committed).expect("identical run passes");
        assert_eq!(lines.len(), FLOOR_KEYS.len());
        // Mild slowdown (within tolerance) still passes.
        let mut r = sample_report();
        r.verify.pairs_per_s = 100.0 * (FLOOR_TOLERANCE + 0.05);
        assert_floor(&committed, &r.to_json()).expect("within-tolerance run passes");
        // A 50% regression on any gated key fails, naming the key.
        let mut r = sample_report();
        r.minhash.kernel.per_s = 15.0;
        let err = assert_floor(&committed, &r.to_json()).unwrap_err();
        assert!(err.contains("minhash") && err.contains("kernel_components_per_s"));
        let mut r = sample_report();
        r.verify_batched.pairs_per_s = 500.0;
        let err = assert_floor(&committed, &r.to_json()).unwrap_err();
        assert!(err.contains("verify_batched"));
        // The SPRT row is gated too.
        let mut r = sample_report();
        r.sprt_verify.pairs_per_s = 50.0;
        let err = assert_floor(&committed, &r.to_json()).unwrap_err();
        assert!(err.contains("sprt_verify"));
        // And the v4 rows: the E2LSH kernel and the multi-probe query path.
        let mut r = sample_report();
        r.e2lsh_hash.kernel.per_s = 10.0;
        let err = assert_floor(&committed, &r.to_json()).unwrap_err();
        assert!(err.contains("e2lsh_hash"));
        let mut r = sample_report();
        r.multiprobe_query.queries_per_s = 100.0;
        let err = assert_floor(&committed, &r.to_json()).unwrap_err();
        assert!(err.contains("multiprobe_query"));
        // A fresh emit missing a gated section is an error, not a pass.
        let truncated = committed.replace("\"verify_batched\":", "\"vb\":");
        assert!(assert_floor(&committed, &truncated).is_err());
    }

    #[test]
    fn microbenches_are_bit_identical_and_positive() {
        // Tiny shapes would distort throughput but the assertions inside
        // the bench (scalar ≡ kernel) are the point here; run the real
        // shapes once — they are sub-second in release, a few seconds in
        // debug.
        let b = srp_bench(7);
        assert!(b.scalar.per_s > 0.0 && b.kernel.per_s > 0.0);
        let b = minhash_bench(7);
        assert!(b.scalar.per_s > 0.0 && b.kernel.per_s > 0.0);
        let b = e2lsh_bench(7);
        assert!(b.scalar.per_s > 0.0 && b.kernel.per_s > 0.0);
    }
}
