//! The online-serving latency harness (`repro serve-loop`).
//!
//! Drives a [`ServingSearcher`] under mixed load — N reader threads
//! streaming threshold queries while one writer batches inserts and
//! removes into published epochs, with a compaction pass mid-run — and
//! reports p50/p95/p99 read and write latency. The workload is
//! count-based (each reader runs a fixed query budget, the writer a
//! fixed batch schedule), so a run's *work* is reproducible even though
//! its latencies are host-dependent.
//!
//! Like the perf baseline, the report serializes to hand-rolled JSON
//! (`SERVE_LOOP.json`; the workspace has no serde) with a schema marker
//! and a [`validate_json`] check the CI `serving` job runs against the
//! emitted file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bayeslsh_core::serving::ServingSearcher;
use bayeslsh_core::{Algorithm, PipelineConfig, Searcher};
use bayeslsh_datasets::Preset;
use bayeslsh_numeric::Parallelism;
use bayeslsh_sparse::SparseVector;

/// Workload shape for one harness run.
#[derive(Debug, Clone)]
pub struct ServeLoopConfig {
    /// Dataset scale factor for the RCV1-shaped preset.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Queries each reader issues.
    pub queries_per_reader: usize,
    /// Writer batches; each inserts [`Self::batch_inserts`] vectors and
    /// removes one older id, then publishes an epoch.
    pub batches: usize,
    /// Inserts per writer batch.
    pub batch_inserts: usize,
}

impl Default for ServeLoopConfig {
    fn default() -> Self {
        Self {
            scale: 0.004,
            seed: 42,
            readers: 4,
            queries_per_reader: 200,
            batches: 8,
            batch_inserts: 4,
        }
    }
}

/// Nearest-rank latency percentiles over one operation class.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Operations measured.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Worst observed, microseconds.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarize a latency sample (microseconds); `count` may be zero,
    /// in which case every percentile is zero.
    pub fn from_samples(mut us: Vec<f64>) -> Self {
        us.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if us.is_empty() {
                return 0.0;
            }
            // Nearest-rank: ceil(p/100 * N)-th smallest, 1-indexed.
            let rank = ((p / 100.0) * us.len() as f64).ceil().max(1.0) as usize;
            us[rank.min(us.len()) - 1]
        };
        Self {
            count: us.len() as u64,
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            max_us: us.last().copied().unwrap_or(0.0),
        }
    }
}

/// The full mixed-load report.
#[derive(Debug, Clone)]
pub struct ServeLoopReport {
    /// Dataset scale factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Reader thread count.
    pub readers: usize,
    /// Corpus size at the end of the run.
    pub n_vectors: usize,
    /// Epochs the writer published (including the compaction epoch).
    pub epochs_published: u64,
    /// Vectors inserted across all batches.
    pub inserts: u64,
    /// Vectors tombstoned across all batches.
    pub removes: u64,
    /// Tombstones reclaimed by the mid-run compaction.
    pub reclaimed: u64,
    /// Distinct epoch ordinals the readers observed (must span more than
    /// one when the writer published — proof the hot swap really served).
    pub epochs_observed: u64,
    /// Threshold-query latency under write load.
    pub read: LatencySummary,
    /// Writer-side latency (staged write + publish, per batch).
    pub write: LatencySummary,
}

/// Run the harness: build the RCV1-shaped preset at `cfg.scale`, wrap it
/// in a [`ServingSearcher`], and drive readers and the writer to their
/// budgets concurrently.
pub fn run(cfg: &ServeLoopConfig) -> Result<ServeLoopReport, String> {
    let data = Preset::Rcv1.load(cfg.scale, cfg.seed);
    if data.len() < cfg.batches + 1 {
        return Err(format!(
            "corpus too small ({} vectors) for {} write batches — raise --scale",
            data.len(),
            cfg.batches
        ));
    }
    // Recycled corpus vectors double as the insert stream and the query
    // stream; every reader walks the corpus at its own stride.
    let inserts: Vec<SparseVector> = data.vectors().to_vec();
    let queries: Vec<SparseVector> = data.vectors().iter().take(64).cloned().collect();
    let searcher = Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(Parallelism::serial())
        .build(data)
        .map_err(|e| format!("build failed: {e}"))?;
    let serving = Arc::new(ServingSearcher::new(searcher));

    let epoch_mask = AtomicU64::new(1); // bit per observed ordinal (< 64)
    let mut read_us: Vec<f64> = Vec::new();
    let mut write_us: Vec<f64> = Vec::new();
    let mut inserted = 0u64;
    let mut removed = 0u64;
    let mut reclaimed = 0usize;

    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for r in 0..cfg.readers {
            let serving = Arc::clone(&serving);
            let queries = &queries;
            let epoch_mask = &epoch_mask;
            handles.push(scope.spawn(move || -> Result<Vec<f64>, String> {
                let mut us = Vec::with_capacity(cfg.queries_per_reader);
                for i in 0..cfg.queries_per_reader {
                    let q = &queries[(i * (r + 1)) % queries.len()];
                    let start = Instant::now();
                    let epoch = serving.epoch();
                    epoch
                        .searcher()
                        .query(q, 0.7)
                        .map_err(|e| format!("reader {r}: {e}"))?;
                    us.push(start.elapsed().as_secs_f64() * 1e6);
                    epoch_mask.fetch_or(1 << epoch.ordinal().min(63), Ordering::Relaxed);
                }
                Ok(us)
            }));
        }

        // Writer: insert a batch, tombstone one older id, publish; compact
        // halfway through so readers run over a compacted epoch too.
        for batch in 0..cfg.batches {
            let start = Instant::now();
            for i in 0..cfg.batch_inserts {
                let v = inserts[(batch * cfg.batch_inserts + i) % inserts.len()].clone();
                serving.insert(v).map_err(|e| format!("insert: {e}"))?;
                inserted += 1;
            }
            if serving
                .remove(batch as u32)
                .map_err(|e| format!("remove: {e}"))?
            {
                removed += 1;
            }
            if batch == cfg.batches / 2 {
                reclaimed += serving.compact();
            }
            serving.publish();
            write_us.push(start.elapsed().as_secs_f64() * 1e6);
        }

        for h in handles {
            read_us.extend(h.join().expect("reader thread panicked")?);
        }
        Ok(())
    })?;

    let final_epoch = serving.epoch();
    Ok(ServeLoopReport {
        scale: cfg.scale,
        seed: cfg.seed,
        readers: cfg.readers,
        n_vectors: final_epoch.searcher().len(),
        epochs_published: final_epoch.ordinal(),
        inserts: inserted,
        removes: removed,
        reclaimed: reclaimed as u64,
        epochs_observed: epoch_mask.load(Ordering::Relaxed).count_ones() as u64,
        read: LatencySummary::from_samples(read_us),
        write: LatencySummary::from_samples(write_us),
    })
}

fn json_latency(l: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}",
        l.count, l.p50_us, l.p95_us, l.p99_us, l.max_us
    )
}

impl ServeLoopReport {
    /// Serialize to the `SERVE_LOOP.json` schema (see [`validate_json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"bayeslsh-serve-loop-v1\",\n",
                "  \"scale\": {},\n",
                "  \"seed\": {},\n",
                "  \"readers\": {},\n",
                "  \"n_vectors\": {},\n",
                "  \"epochs_published\": {},\n",
                "  \"epochs_observed\": {},\n",
                "  \"inserts\": {},\n",
                "  \"removes\": {},\n",
                "  \"reclaimed\": {},\n",
                "  \"read\": {},\n",
                "  \"write\": {}\n",
                "}}\n"
            ),
            self.scale,
            self.seed,
            self.readers,
            self.n_vectors,
            self.epochs_published,
            self.epochs_observed,
            self.inserts,
            self.removes,
            self.reclaimed,
            json_latency(&self.read),
            json_latency(&self.write),
        )
    }
}

/// Extract the number following `"key":` anywhere in `s`.
fn json_number(s: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = s.find(&needle)? + needle.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The flat object following `section`, bounded at its closing brace.
fn section_slice<'a>(s: &'a str, section: &str) -> Option<&'a str> {
    let at = s.find(section)?;
    let end = s[at..].find('}').map_or(s.len(), |e| at + e + 1);
    Some(&s[at..end])
}

/// Schema check for an emitted serve-loop report: schema marker present,
/// both latency sections carry positive percentile keys in the right
/// order (p50 ≤ p95 ≤ p99 ≤ max), and the run did real mixed work.
pub fn validate_json(s: &str) -> Result<(), String> {
    if !s.contains("\"schema\": \"bayeslsh-serve-loop-v1\"") {
        return Err("missing or wrong schema marker".into());
    }
    for section in ["\"read\":", "\"write\":"] {
        let sub = section_slice(s, section).ok_or_else(|| format!("missing section {section}"))?;
        let mut prev = 0.0f64;
        for key in ["p50_us", "p95_us", "p99_us", "max_us"] {
            match json_number(sub, key) {
                Some(v) if v > 0.0 && v >= prev => prev = v,
                Some(v) => {
                    return Err(format!(
                        "{section} {key} = {v}, expected positive and >= the lower percentile"
                    ))
                }
                None => return Err(format!("{section} missing numeric {key}")),
            }
        }
        match json_number(sub, "count") {
            Some(v) if v > 0.0 => {}
            _ => return Err(format!("{section} missing a positive count")),
        }
    }
    for key in ["epochs_published", "inserts", "removes"] {
        match json_number(s, key) {
            Some(v) if v > 0.0 => {}
            _ => return Err(format!("no mixed load: {key} must be positive")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let l = LatencySummary::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(l.count, 100);
        assert_eq!(l.p50_us, 50.0);
        assert_eq!(l.p95_us, 95.0);
        assert_eq!(l.p99_us, 99.0);
        assert_eq!(l.max_us, 100.0);
        let empty = LatencySummary::from_samples(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max_us, 0.0);
    }

    #[test]
    fn tiny_run_emits_a_valid_report() {
        let cfg = ServeLoopConfig {
            scale: 0.002,
            readers: 2,
            queries_per_reader: 20,
            batches: 4,
            batch_inserts: 2,
            ..ServeLoopConfig::default()
        };
        let report = run(&cfg).expect("harness run");
        assert_eq!(report.inserts, 8);
        assert!(report.removes >= 1);
        assert!(report.reclaimed >= 1, "mid-run compaction must reclaim");
        assert_eq!(report.epochs_published, 4);
        assert_eq!(report.read.count, 40);
        assert_eq!(report.write.count, 4);
        validate_json(&report.to_json()).expect("schema check");
    }

    #[test]
    fn validator_rejects_broken_payloads() {
        assert!(validate_json("{}").is_err());
        let cfg = ServeLoopConfig {
            scale: 0.002,
            readers: 1,
            queries_per_reader: 5,
            batches: 2,
            batch_inserts: 1,
            ..ServeLoopConfig::default()
        };
        let good = run(&cfg).expect("harness run").to_json();
        validate_json(&good).expect("good payload");
        assert!(validate_json(&good.replace("\"read\":", "\"r\":")).is_err());
        assert!(validate_json(&good.replace("serve-loop-v1", "serve-loop-v0")).is_err());
        // A write section whose p95 regressed below p50 is malformed.
        let sub = section_slice(&good, "\"read\":").unwrap().to_string();
        let broken = good.replace(
            &sub,
            &sub.replace("\"p95_us\":", "\"p95_us\": -1.0, \"x\":"),
        );
        assert!(validate_json(&broken).is_err());
    }
}
