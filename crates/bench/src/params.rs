//! **Figure 2** and **Table 5** — the effect of varying γ, δ, ε one at a
//! time (the other two fixed at 0.05) on the running time and output
//! quality of LSH+BayesLSH, on the WikiWords100K-like dataset at t = 0.7
//! (cosine). LSH and LSH Approx reference timings are included, as in
//! Figure 2.

use bayeslsh_core::pipeline::ground_truth;
use bayeslsh_core::{estimate_errors, recall_against, run_algorithm, Algorithm, PipelineConfig};
use bayeslsh_datasets::Preset;
use bayeslsh_lsh::Measure;
use bayeslsh_sparse::Dataset;

/// Which parameter a sweep row varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Varied {
    /// Accuracy parameter γ.
    Gamma,
    /// Accuracy parameter δ.
    Delta,
    /// Recall parameter ε.
    Epsilon,
}

impl Varied {
    /// Label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Varied::Gamma => "gamma",
            Varied::Delta => "delta",
            Varied::Epsilon => "epsilon",
        }
    }
}

/// One sweep measurement (a point of Figure 2 plus its Table 5 columns).
#[derive(Debug, Clone)]
pub struct ParamRow {
    /// Parameter being varied.
    pub varied: Varied,
    /// Its value (the other two parameters are fixed at 0.05).
    pub value: f64,
    /// LSH+BayesLSH total seconds.
    pub secs: f64,
    /// Fraction of estimates with error > 0.05 (Table 5, γ column).
    pub frac_err_above_005: f64,
    /// Mean absolute estimate error (Table 5, δ column).
    pub mean_err: f64,
    /// Recall vs the exact result (Table 5, ε column).
    pub recall: f64,
}

/// Reference timings for Figure 2's horizontal lines.
#[derive(Debug, Clone)]
pub struct ReferenceRow {
    /// Baseline algorithm.
    pub algorithm: Algorithm,
    /// Total seconds.
    pub secs: f64,
}

/// The values each parameter sweeps over (paper: 0.01 to 0.09 step 0.02).
pub const SWEEP: [f64; 5] = [0.01, 0.03, 0.05, 0.07, 0.09];

fn base_config(t: f64, seed: u64) -> PipelineConfig {
    let mut cfg = PipelineConfig::cosine(t);
    cfg.epsilon = 0.05;
    cfg.delta = 0.05;
    cfg.gamma = 0.05;
    cfg.seed = seed;
    cfg
}

fn measure_row(
    data: &Dataset,
    truth: &[(u32, u32, f64)],
    varied: Varied,
    value: f64,
    cfg: &PipelineConfig,
) -> ParamRow {
    let out = run_algorithm(Algorithm::LshBayesLsh, data, cfg);
    let err = estimate_errors(&out.pairs, data, Measure::Cosine, 0.05);
    ParamRow {
        varied,
        value,
        secs: out.total_secs,
        frac_err_above_005: err.frac_above,
        mean_err: err.mean_abs,
        recall: recall_against(truth, &out.pairs),
    }
}

/// Run the full sweep on the WikiWords100K-like preset at `t = 0.7`.
pub fn run(scale: f64, seed: u64) -> (Vec<ParamRow>, Vec<ReferenceRow>) {
    let data = Preset::WikiWords100K.load(scale, seed);
    run_on(&data, seed)
}

/// Run the sweep on a caller-provided dataset (used by tests and
/// examples).
pub fn run_on(data: &Dataset, seed: u64) -> (Vec<ParamRow>, Vec<ReferenceRow>) {
    let t = 0.7;
    let truth = ground_truth(data, Measure::Cosine, t);
    let mut rows = Vec::new();
    for &value in &SWEEP {
        let mut cfg = base_config(t, seed);
        cfg.gamma = value;
        rows.push(measure_row(data, &truth, Varied::Gamma, value, &cfg));
    }
    for &value in &SWEEP {
        let mut cfg = base_config(t, seed);
        cfg.delta = value;
        rows.push(measure_row(data, &truth, Varied::Delta, value, &cfg));
    }
    for &value in &SWEEP {
        let mut cfg = base_config(t, seed);
        cfg.epsilon = value;
        rows.push(measure_row(data, &truth, Varied::Epsilon, value, &cfg));
    }
    let references = [Algorithm::Lsh, Algorithm::LshApprox]
        .iter()
        .map(|&algorithm| {
            let out = run_algorithm(algorithm, data, &base_config(t, seed));
            ReferenceRow {
                algorithm,
                secs: out.total_secs,
            }
        })
        .collect();
    (rows, references)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_expected_grid_and_quality_trends() {
        let (rows, refs) = run(0.0035, 11);
        assert_eq!(rows.len(), 15);
        assert_eq!(refs.len(), 2);

        // Table 5 trends: mean error grows with delta …
        let delta_rows: Vec<&ParamRow> =
            rows.iter().filter(|r| r.varied == Varied::Delta).collect();
        assert!(
            delta_rows.last().unwrap().mean_err >= delta_rows[0].mean_err,
            "mean error should not shrink as delta loosens: {:?}",
            delta_rows.iter().map(|r| r.mean_err).collect::<Vec<_>>()
        );
        // … and recall does not improve as epsilon grows.
        let eps_rows: Vec<&ParamRow> = rows
            .iter()
            .filter(|r| r.varied == Varied::Epsilon)
            .collect();
        assert!(
            eps_rows.last().unwrap().recall <= eps_rows[0].recall + 0.02,
            "recall should not grow with epsilon"
        );
        // Recall stays within the contract at every epsilon: fnr < eps
        // (with sampling slack).
        for r in &eps_rows {
            assert!(
                r.recall >= 1.0 - r.value - 0.08,
                "eps={}: recall {}",
                r.value,
                r.recall
            );
        }
    }
}
