//! **Figure 4** — candidate pairs remaining vs hashes examined.
//!
//! The paper's key mechanism plot: BayesLSH prunes the vast majority of
//! false-positive candidates within the first few 32-hash chunks. Three
//! panels: (a) WikiWords100K, t=0.7 cosine; (b) WikiLinks, t=0.7 cosine;
//! (c) WikiWords100K, t=0.7 binary cosine — each with both AllPairs- and
//! LSH-generated candidate sets.

use bayeslsh_core::{run_algorithm, Algorithm, PipelineConfig};
use bayeslsh_datasets::Preset;

/// One pruning curve.
#[derive(Debug, Clone)]
pub struct PruningCurve {
    /// Panel label, e.g. "WikiWords100K t=0.7 Cosine".
    pub panel: String,
    /// Candidate generator feeding BayesLSH.
    pub source: Algorithm,
    /// `(hashes examined, candidates remaining)`, starting at 0 hashes.
    pub points: Vec<(u32, u64)>,
    /// Size of the final output (the floor the curve approaches).
    pub output: u64,
}

fn curve(
    panel: &str,
    algo: Algorithm,
    data: &bayeslsh_sparse::Dataset,
    cfg: &PipelineConfig,
) -> PruningCurve {
    let out = run_algorithm(algo, data, cfg);
    let stats = out.engine.expect("BayesLSH pipelines report engine stats");
    PruningCurve {
        panel: panel.to_string(),
        source: algo,
        points: stats.survivors_curve(),
        output: out.pairs.len() as u64,
    }
}

/// Run the three panels at `scale`.
pub fn run(scale: f64, seed: u64) -> Vec<PruningCurve> {
    let mut curves = Vec::new();
    let t = 0.7;

    // Panel (a): WikiWords100K, weighted cosine.
    {
        let data = Preset::WikiWords100K.load(scale, seed);
        let mut cfg = PipelineConfig::cosine(t);
        cfg.seed = seed;
        curves.push(curve(
            "WikiWords100K t=0.7 Cosine",
            Algorithm::ApBayesLsh,
            &data,
            &cfg,
        ));
        curves.push(curve(
            "WikiWords100K t=0.7 Cosine",
            Algorithm::LshBayesLsh,
            &data,
            &cfg,
        ));
    }
    // Panel (b): WikiLinks, weighted cosine.
    {
        let data = Preset::WikiLinks.load(scale, seed);
        let mut cfg = PipelineConfig::cosine(t);
        cfg.seed = seed;
        curves.push(curve(
            "WikiLinks t=0.7 Cosine",
            Algorithm::ApBayesLsh,
            &data,
            &cfg,
        ));
        curves.push(curve(
            "WikiLinks t=0.7 Cosine",
            Algorithm::LshBayesLsh,
            &data,
            &cfg,
        ));
    }
    // Panel (c): WikiWords100K, binary cosine.
    {
        let data = Preset::WikiWords100K.load_binary(scale, seed);
        let mut cfg = PipelineConfig::cosine(t);
        cfg.seed = seed;
        curves.push(curve(
            "WikiWords100K t=0.7 Binary Cosine",
            Algorithm::ApBayesLsh,
            &data,
            &cfg,
        ));
        curves.push(curve(
            "WikiWords100K t=0.7 Binary Cosine",
            Algorithm::LshBayesLsh,
            &data,
            &cfg,
        ));
    }
    curves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_shrink_fast_toward_output() {
        let curves = run(0.003, 13);
        assert_eq!(curves.len(), 6);
        for c in &curves {
            let total = c.points[0].1;
            assert!(total > 0, "{}: empty candidate set", c.panel);
            // Monotone non-increasing.
            for w in c.points.windows(2) {
                assert!(w[1].1 <= w[0].1);
            }
            // The paper's headline: most false positives die within the
            // first few chunks.
            let at_128 = c
                .points
                .iter()
                .find(|&&(h, _)| h >= 128)
                .map(|&(_, n)| n)
                .unwrap_or(c.points.last().unwrap().1);
            assert!(
                (at_128 as f64) < 0.6 * total as f64 || total < 50,
                "{} ({}): {at_128} of {total} remain after 128 hashes",
                c.panel,
                c.source
            );
            // The curve floor cannot be below the output size.
            assert!(c.points.last().unwrap().1 >= c.output);
        }
    }
}
