//! The snapshot cold-load experiment (`repro save-index` / `repro serve`).
//!
//! The point of persistence is economic: an offline build pays the corpus
//! hashing and index construction once, and every serving worker cold-loads
//! the artifact instead of re-paying it. This module measures exactly that
//! trade on a preset corpus — build+save on one side, load on the other,
//! with the loaded searcher's output asserted **bit-identical** to a
//! from-scratch rebuild while the clock runs.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

use bayeslsh_core::{Algorithm, Parallelism, PipelineConfig, Searcher, SnapshotHeader};
use bayeslsh_datasets::Preset;

/// The build the experiment persists: the paper's flagship composition
/// over an RCV1-shaped corpus at t = 0.7.
fn build_searcher(scale: f64, seed: u64) -> Searcher {
    let data = Preset::Rcv1.load(scale, seed);
    Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLsh)
        .parallelism(Parallelism::Auto)
        .build(data)
        .expect("preset corpus and paper config are valid")
}

/// What `repro save-index` measured.
#[derive(Debug, Clone)]
pub struct SaveReport {
    /// Corpus vectors indexed.
    pub n_vectors: usize,
    /// Corpus hashes the build computed (what a cold load avoids).
    pub hashes: u64,
    /// Wall time of the from-scratch build.
    pub build_secs: f64,
    /// Wall time of serializing the snapshot.
    pub save_secs: f64,
    /// Snapshot size on disk.
    pub bytes: u64,
}

/// Build the standard searcher and persist it to `path`.
pub fn save_index(scale: f64, seed: u64, path: &str) -> Result<SaveReport, String> {
    let start = Instant::now();
    let searcher = build_searcher(scale, seed);
    let build_secs = start.elapsed().as_secs_f64();
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let start = Instant::now();
    searcher
        .save(BufWriter::new(file))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    let save_secs = start.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    Ok(SaveReport {
        n_vectors: searcher.len(),
        hashes: searcher.hash_count(),
        build_secs,
        save_secs,
        bytes,
    })
}

/// What `repro inspect-snapshot` probes: the cheap header read plus a
/// full checksum pass over the file.
#[derive(Debug, Clone)]
pub struct InspectReport {
    /// The decoded [`SnapshotHeader`] (magic and version already
    /// validated by the read).
    pub header: SnapshotHeader,
    /// File size on disk.
    pub bytes: u64,
    /// `None` when a full load (including the trailing checksum)
    /// verified clean; `Some(reason)` when the body is damaged even
    /// though the header parsed.
    pub damage: Option<String>,
}

/// Probe the snapshot at `path`: decode the header, then run a full
/// checksum-verifying load and report whether the body is intact.
pub fn inspect(path: &str) -> Result<InspectReport, String> {
    let open = || File::open(path).map_err(|e| format!("cannot open {path}: {e}"));
    let header =
        SnapshotHeader::read(BufReader::new(open()?)).map_err(|e| format!("probe: {e}"))?;
    let bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    let damage = match Searcher::load(BufReader::new(open()?)) {
        Ok(_) => None,
        Err(e) => Some(e.to_string()),
    };
    Ok(InspectReport {
        header,
        bytes,
        damage,
    })
}

/// What `repro serve --from-snapshot` measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Corpus vectors served.
    pub n_vectors: usize,
    /// Wall time to probe the header (metadata only).
    pub probe_secs: f64,
    /// Wall time to cold-load the snapshot into a ready searcher.
    pub load_secs: f64,
    /// Wall time to rebuild the same searcher from scratch.
    pub rebuild_secs: f64,
    /// `rebuild_secs / load_secs`.
    pub speedup: f64,
    /// Point queries answered while checking equivalence.
    pub queries: usize,
    /// Total wall time of those queries on the loaded searcher.
    pub query_secs: f64,
    /// Hash comparisons the verifier spent across the query sweep.
    pub hashes_compared: u64,
    /// Hash comparisons per accepted neighbor over the sweep — the
    /// adaptive-verification cost metric (0.0 when nothing matched).
    pub hashes_per_accepted_pair: f64,
    /// False-negative rate the banding plan was asked for.
    pub requested_fnr: f64,
    /// Expected false-negative rate the plan actually achieves at the
    /// threshold (`(1 − p^k)^l`); worse than requested when the band cap
    /// clamped `l`.
    pub achieved_fnr: f64,
    /// True when the band cap truncated `l`, so `achieved_fnr` exceeds
    /// `requested_fnr`.
    pub fnr_clamped: bool,
}

/// Cold-load `path`, rebuild the equivalent searcher from scratch, assert
/// the two are bit-identical (batch join + a query sweep), and report the
/// timings. `scale`/`seed` must match the `save-index` invocation that
/// wrote the snapshot — a mismatch is reported, not ignored.
pub fn serve(scale: f64, seed: u64, path: &str) -> Result<ServeReport, String> {
    let open = || File::open(path).map_err(|e| format!("cannot open {path}: {e}"));
    let start = Instant::now();
    let header =
        SnapshotHeader::read(BufReader::new(open()?)).map_err(|e| format!("probe: {e}"))?;
    let probe_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let loaded = Searcher::load(BufReader::new(open()?)).map_err(|e| format!("load: {e}"))?;
    let load_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let rebuilt = build_searcher(scale, seed);
    let rebuild_secs = start.elapsed().as_secs_f64();

    if loaded.len() != rebuilt.len() || loaded.hash_count() != rebuilt.hash_count() {
        return Err(format!(
            "snapshot ({} vectors, {} hashes) does not match a --scale {scale} --seed {seed} \
             rebuild ({} vectors, {} hashes); pass the same arguments as save-index",
            loaded.len(),
            loaded.hash_count(),
            rebuilt.len(),
            rebuilt.hash_count()
        ));
    }
    debug_assert_eq!(header.n_vectors as usize, loaded.len());

    // Bit-identity while the clock runs: the loaded index must not merely
    // work, it must reproduce the rebuild exactly.
    let (a, b) = (
        rebuilt.all_pairs().map_err(|e| e.to_string())?,
        loaded.all_pairs().map_err(|e| e.to_string())?,
    );
    if a.pairs.len() != b.pairs.len()
        || a.pairs
            .iter()
            .zip(&b.pairs)
            .any(|(x, y)| (x.0, x.1, x.2.to_bits()) != (y.0, y.1, y.2.to_bits()))
    {
        return Err("loaded all_pairs diverged from the rebuild".into());
    }

    let qids: Vec<u32> = (0..loaded.len() as u32).step_by(7).collect();
    let mut query_secs = 0.0;
    let mut hashes_compared = 0u64;
    let mut accepted = 0u64;
    for &qid in &qids {
        let q = rebuilt.data().vector(qid).clone();
        let want = rebuilt.query(&q, 0.7).map_err(|e| e.to_string())?;
        let start = Instant::now();
        let got = loaded.query(&q, 0.7).map_err(|e| e.to_string())?;
        query_secs += start.elapsed().as_secs_f64();
        hashes_compared += got.stats.hash_comparisons;
        accepted += got.neighbors.len() as u64;
        if want.neighbors.len() != got.neighbors.len()
            || want
                .neighbors
                .iter()
                .zip(&got.neighbors)
                .any(|(x, y)| (x.0, x.1.to_bits()) != (y.0, y.1.to_bits()))
            || want.stats != got.stats
        {
            return Err(format!("query {qid} diverged from the rebuild"));
        }
    }

    let plan = loaded.banding_plan();
    Ok(ServeReport {
        n_vectors: loaded.len(),
        probe_secs,
        load_secs,
        rebuild_secs,
        speedup: rebuild_secs / load_secs.max(1e-12),
        queries: qids.len(),
        query_secs,
        hashes_compared,
        hashes_per_accepted_pair: if accepted == 0 {
            0.0
        } else {
            hashes_compared as f64 / accepted as f64
        },
        requested_fnr: plan.requested_fnr,
        achieved_fnr: plan.achieved_fnr,
        fnr_clamped: plan.clamped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_then_serve_round_trips_on_a_tiny_preset() {
        let path = std::env::temp_dir().join("bayeslsh_persist_test.snap");
        let path = path.to_str().unwrap().to_string();
        let saved = save_index(0.0005, 42, &path).unwrap();
        assert!(saved.n_vectors > 0 && saved.bytes > 0 && saved.hashes > 0);
        let served = serve(0.0005, 42, &path).unwrap();
        assert_eq!(served.n_vectors, saved.n_vectors);
        assert!(served.load_secs > 0.0 && served.rebuild_secs > 0.0);
        assert!(served.queries > 0);
        // The banding plan's FNR report rides along: both rates are real
        // probabilities, and an unclamped plan meets what was asked.
        assert!(served.requested_fnr > 0.0 && served.requested_fnr < 1.0);
        assert!(served.achieved_fnr > 0.0 && served.achieved_fnr < 1.0);
        assert!(served.fnr_clamped || served.achieved_fnr <= served.requested_fnr);
        // A different seed is a detected mismatch, not silent divergence.
        assert!(serve(0.0005, 43, &path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inspect_reports_header_and_checksum_status() {
        let path = std::env::temp_dir().join("bayeslsh_inspect_test.snap");
        let path = path.to_str().unwrap().to_string();
        let saved = save_index(0.0005, 42, &path).unwrap();

        let clean = inspect(&path).unwrap();
        assert_eq!(clean.header.n_vectors as usize, saved.n_vectors);
        assert_eq!(clean.bytes, saved.bytes);
        assert!(clean.damage.is_none());

        // Flip a byte near the end: the header still parses, but the
        // full checksum pass must flag the damage.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let damaged = inspect(&path).unwrap();
        assert_eq!(damaged.header, clean.header);
        assert!(damaged.damage.is_some());

        let _ = std::fs::remove_file(&path);
    }
}
