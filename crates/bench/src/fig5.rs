//! **Figure 5 (appendix)** — the influence of the prior versus the data.
//!
//! Three very different priors over the collision similarity
//! `r ∈ [0.5, 1]` — `p(r) ∝ r⁻³`, uniform, and `p(r) ∝ r³` — are updated
//! with the same hash outcomes (m, n) ∈ {(24,32), (48,64), (96,128)} for a
//! pair with cosine 0.70 (r = 0.75). The posteriors converge rapidly: the
//! paper's argument that the uniform prior is safe for cosine BayesLSH.

/// The three priors of the paper's appendix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorKind {
    /// `p(r) ∝ r⁻³` — negatively sloped power law.
    PowNeg3,
    /// Uniform on `[0.5, 1]`.
    Uniform,
    /// `p(r) ∝ r³` — positively sloped power law.
    Pow3,
}

impl PriorKind {
    /// All three, in the paper's legend order.
    pub const ALL: [PriorKind; 3] = [PriorKind::PowNeg3, PriorKind::Uniform, PriorKind::Pow3];

    /// Legend label.
    pub fn name(&self) -> &'static str {
        match self {
            PriorKind::PowNeg3 => "x^-3",
            PriorKind::Uniform => "uniform",
            PriorKind::Pow3 => "x^3",
        }
    }

    fn density(&self, r: f64) -> f64 {
        match self {
            PriorKind::PowNeg3 => r.powi(-3),
            PriorKind::Uniform => 1.0,
            PriorKind::Pow3 => r.powi(3),
        }
    }
}

const GRID: usize = 2_000;

/// Normalized posterior density `p(r | M(m,n))` under `prior`, evaluated on
/// a uniform grid over `[0.5, 1]` (trapezoid-normalized). `(0, 0)` gives
/// the prior itself.
pub fn posterior_grid(prior: PriorKind, m: u32, n: u32) -> Vec<(f64, f64)> {
    assert!(m <= n);
    let h = 0.5 / GRID as f64;
    let unnorm: Vec<(f64, f64)> = (0..=GRID)
        .map(|i| {
            let r = 0.5 + i as f64 * h;
            let r_c = r.min(1.0 - 1e-12); // avoid 0^0 edge at r = 1
            let like = if n == 0 {
                1.0
            } else {
                // Scale-free likelihood around the MLE to avoid underflow.
                let p = (m as f64 / n as f64).clamp(1e-9, 1.0 - 1e-9);
                ((m as f64) * (r_c.ln() - p.ln())
                    + ((n - m) as f64) * ((1.0 - r_c).ln() - (1.0 - p).ln()))
                .exp()
            };
            (r, like * prior.density(r_c))
        })
        .collect();
    let mut z = 0.0;
    for w in unnorm.windows(2) {
        z += 0.5 * (w[0].1 + w[1].1) * h;
    }
    unnorm.into_iter().map(|(r, d)| (r, d / z)).collect()
}

/// Total-variation distance between two densities on the same grid.
pub fn tv_distance(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    assert_eq!(a.len(), b.len());
    let h = 0.5 / (a.len() - 1) as f64;
    let mut acc = 0.0;
    for (x, y) in a.windows(2).zip(b.windows(2)) {
        let d0 = (x[0].1 - y[0].1).abs();
        let d1 = (x[1].1 - y[1].1).abs();
        acc += 0.5 * (d0 + d1) * h;
    }
    0.5 * acc
}

/// One convergence measurement: max pairwise TV distance between the three
/// posteriors after observing `(m, n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Hashes examined.
    pub n: u32,
    /// Matches observed.
    pub m: u32,
    /// Max pairwise total-variation distance across the three priors.
    pub max_tv: f64,
}

/// The paper's observation schedule: 75% agreement at n = 0, 32, 64, 128
/// (cosine 0.70 → r = 0.75).
pub fn run() -> Vec<Fig5Row> {
    [(0u32, 0u32), (32, 24), (64, 48), (128, 96)]
        .iter()
        .map(|&(n, m)| {
            let grids: Vec<Vec<(f64, f64)>> = PriorKind::ALL
                .iter()
                .map(|&p| posterior_grid(p, m, n))
                .collect();
            let mut max_tv = 0.0f64;
            for i in 0..grids.len() {
                for j in (i + 1)..grids.len() {
                    max_tv = max_tv.max(tv_distance(&grids[i], &grids[j]));
                }
            }
            Fig5Row { n, m, max_tv }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_normalize() {
        for prior in PriorKind::ALL {
            for &(m, n) in &[(0u32, 0u32), (24, 32), (96, 128)] {
                let g = posterior_grid(prior, m, n);
                let h = 0.5 / (g.len() - 1) as f64;
                let z: f64 = g.windows(2).map(|w| 0.5 * (w[0].1 + w[1].1) * h).sum();
                assert!((z - 1.0).abs() < 1e-9, "{prior:?} ({m},{n}): Z = {z}");
            }
        }
    }

    #[test]
    fn priors_differ_then_converge() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        // Priors alone are far apart...
        assert!(rows[0].max_tv > 0.25, "prior TV {}", rows[0].max_tv);
        // ... and 128 observations shrink the gap severalfold (paper
        // Fig 5d shows visually-overlapping curves; in TV terms the r^±3
        // priors still retain ~0.1 after 128 draws).
        assert!(rows[3].max_tv < 0.15, "posterior TV {}", rows[3].max_tv);
        assert!(
            rows[3].max_tv < rows[0].max_tv / 2.5,
            "convergence too weak"
        );
        // Convergence is monotone along the schedule.
        for w in rows.windows(2) {
            assert!(w[1].max_tv <= w[0].max_tv + 1e-9);
        }
    }

    #[test]
    fn posterior_peaks_near_mle() {
        let g = posterior_grid(PriorKind::PowNeg3, 96, 128);
        let peak = g
            .iter()
            .cloned()
            .fold((0.0, 0.0), |acc, p| if p.1 > acc.1 { p } else { acc });
        assert!((peak.0 - 0.75).abs() < 0.02, "peak at {}", peak.0);
    }

    #[test]
    fn tv_distance_properties() {
        let a = posterior_grid(PriorKind::Uniform, 24, 32);
        let b = posterior_grid(PriorKind::Pow3, 24, 32);
        assert_eq!(tv_distance(&a, &a), 0.0);
        let d = tv_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
        assert!((tv_distance(&b, &a) - d).abs() < 1e-12);
    }
}
