//! The `repro` CLI usage contract: every argument error — bad flag,
//! missing or unknown experiment, missing required option — exits 2 and
//! prints the same subcommand table, so scripts and humans always get
//! the full menu when they hold the tool wrong.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Exit 2 + error line + the subcommand table — the uniform usage
/// failure shape.
fn assert_usage_failure(out: &Output, expect_msg: &str, what: &str) {
    assert_eq!(out.status.code(), Some(2), "{what}: exit code");
    let err = stderr(out);
    assert!(
        err.contains(&format!("error: {expect_msg}")),
        "{what}: missing error line {expect_msg:?} in:\n{err}"
    );
    assert!(
        err.contains("usage: repro") && err.contains("experiments:"),
        "{what}: usage header missing:\n{err}"
    );
    // A few sentinel rows prove the full table printed.
    for name in ["fig1", "bench-baseline", "serve-loop", "all"] {
        assert!(
            err.contains(name),
            "{what}: table row {name} missing:\n{err}"
        );
    }
}

#[test]
fn no_arguments_is_a_usage_error() {
    assert_usage_failure(&repro(&[]), "missing experiment", "no args");
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    assert_usage_failure(
        &repro(&["fig99"]),
        "unknown experiment \"fig99\"",
        "unknown experiment",
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_failure(
        &repro(&["table1", "--frobnicate"]),
        "unknown argument \"--frobnicate\"",
        "unknown flag",
    );
}

#[test]
fn bad_flag_values_are_usage_errors() {
    assert_usage_failure(
        &repro(&["table1", "--scale", "fast"]),
        "--scale needs a number",
        "bad --scale",
    );
    assert_usage_failure(
        &repro(&["shard-build", "--shards", "0"]),
        "--shards needs a positive integer",
        "zero --shards",
    );
    assert_usage_failure(
        &repro(&["table1", "--seed"]),
        "--seed needs an integer",
        "bare --seed",
    );
}

#[test]
fn missing_required_options_are_usage_errors() {
    assert_usage_failure(
        &repro(&["serve"]),
        "serve needs --from-snapshot PATH",
        "serve without snapshot",
    );
    assert_usage_failure(
        &repro(&["shard-serve"]),
        "shard-serve needs --from-manifest PATH",
        "shard-serve without manifest",
    );
    assert_usage_failure(
        &repro(&["inspect-snapshot"]),
        "inspect-snapshot needs a PATH argument",
        "inspect-snapshot without path",
    );
}

#[test]
fn help_exits_zero_with_the_same_table() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0), "--help must exit 0");
    let err = stderr(&out);
    for name in ["fig1", "table5", "serve-loop", "shard-serve", "all"] {
        assert!(
            err.contains(name),
            "--help table row {name} missing:\n{err}"
        );
    }
}
