//! # BayesLSH — Bayesian Locality Sensitive Hashing for Fast Similarity Search
//!
//! A complete Rust implementation of *Satuluri & Parthasarathy, VLDB 2012*:
//! Bayesian candidate pruning and similarity estimation for all-pairs
//! similarity search, together with every substrate the paper's evaluation
//! depends on (minwise hashing, signed random projections, AllPairs, an LSH
//! banding index, PPJoin+, and shape-matched synthetic datasets).
//!
//! ## Quickstart
//!
//! ```
//! use bayeslsh::prelude::*;
//!
//! // A small corpus with planted near-duplicate clusters.
//! let data = Preset::Rcv1.load(0.001, /* seed */ 7);
//!
//! // All pairs with cosine similarity >= 0.7, via LSH candidate
//! // generation + BayesLSH verification (estimates, not exact):
//! let cfg = PipelineConfig::cosine(0.7);
//! let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
//!
//! // Compare against the exact result:
//! let truth = ground_truth(&data, Measure::Cosine, 0.7);
//! let recall = recall_against(&truth, &out.pairs);
//! assert!(recall >= 0.9, "recall {recall}");
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`numeric`] | special functions, Beta/Binomial distributions, RNG |
//! | [`sparse`] | sparse vectors, exact similarities, datasets, tf-idf |
//! | [`lsh`] | minwise hashing, signed random projections, signature pools |
//! | [`candgen`] | AllPairs, LSH banding, PPJoin+ |
//! | [`core`] | BayesLSH / BayesLSH-Lite engines, posteriors, pipelines |
//! | [`datasets`] | synthetic corpora mimicking the paper's six datasets |
//!
//! The API most users need is re-exported from [`prelude`].

pub use bayeslsh_candgen as candgen;
pub use bayeslsh_core as core;
pub use bayeslsh_datasets as datasets;
pub use bayeslsh_lsh as lsh;
pub use bayeslsh_numeric as numeric;
pub use bayeslsh_sparse as sparse;

/// The one-import API surface.
pub mod prelude {
    pub use bayeslsh_candgen::{
        all_pairs_cosine, all_pairs_jaccard, lsh_candidates_bits, lsh_candidates_ints,
        ppjoin_binary_cosine, ppjoin_jaccard, BandingParams,
    };
    pub use bayeslsh_core::pipeline::ground_truth;
    pub use bayeslsh_core::{
        bayes_verify, bayes_verify_lite, estimate_errors, mle_verify, recall_against,
        run_algorithm, Algorithm, BayesLshConfig, BbitJaccardModel, CosineModel, EngineStats,
        ErrorStats, JaccardModel, KnnIndex, KnnParams, KnnStats, LiteConfig, MinMatchTable,
        PipelineConfig, PosteriorModel, PriorChoice, RunOutput,
    };
    pub use bayeslsh_datasets::{generate, CorpusConfig, Preset};
    pub use bayeslsh_lsh::{
        bbit_collision_prob, bbit_to_jaccard, cos_to_r, r_to_cos, BbitSignatures, BitSignatures,
        IntSignatures, MinHasher, SignaturePool, SrpHasher,
    };
    pub use bayeslsh_numeric::{BetaDist, Binomial, Xoshiro256};
    pub use bayeslsh_sparse::{
        cosine, dot, jaccard, overlap, similarity::Measure, Dataset, SparseVector,
    };
}
