//! # BayesLSH — Bayesian Locality Sensitive Hashing for Fast Similarity Search
//!
//! A complete Rust implementation of *Satuluri & Parthasarathy, VLDB 2012*:
//! Bayesian candidate pruning and similarity estimation for all-pairs
//! similarity search, together with every substrate the paper's evaluation
//! depends on (minwise hashing, signed random projections, AllPairs, an LSH
//! banding index, PPJoin+, and shape-matched synthetic datasets).
//!
//! ## Quickstart: build once, query many
//!
//! The central economy of the paper — hash each object once, then amortize
//! those signatures across candidate generation *and* Bayesian
//! verification — is embodied by the [`Searcher`](prelude::Searcher):
//! construct it once from a corpus and a config (hashing signatures and
//! building the LSH banding index a single time), then serve any mix of
//! batch joins, threshold point queries, top-k retrieval, and incremental
//! inserts.
//!
//! ```
//! use bayeslsh::prelude::*;
//!
//! // A small corpus with planted near-duplicate clusters.
//! let data = Preset::Rcv1.load(0.001, /* seed */ 7);
//!
//! // Build once: signatures + banding index. The composition (candidate
//! // generator × verifier) is picked by algorithm name; here LSH banding
//! // candidates verified by BayesLSH-Lite (prune, then exact-check).
//! let mut searcher = Searcher::builder(PipelineConfig::cosine(0.7))
//!     .algorithm(Algorithm::LshBayesLshLite)
//!     .build(data)
//!     .expect("valid config and corpus");
//!
//! // Batch: all pairs with cosine similarity >= 0.7.
//! let out = searcher.all_pairs().expect("composition runs");
//! let truth = ground_truth(searcher.data(), Measure::Cosine, 0.7);
//! let recall = recall_against(&truth, &out.pairs);
//! assert!(recall >= 0.9, "recall {recall}");
//!
//! // Point queries against the standing index: no corpus re-hashing.
//! let hashed_once = searcher.hash_count();
//! let q = searcher.data().vector(0).clone();
//! let hits = searcher.query(&q, 0.7).expect("in-range threshold");
//! assert!(hits.neighbors.iter().any(|&(id, _)| id == 0));
//! assert_eq!(searcher.hash_count(), hashed_once);
//!
//! // Incremental insert; the new vector is immediately findable.
//! let planted = q.clone();
//! let new_id = searcher.insert(planted).expect("fits the indexed space");
//! let hits = searcher.query(&q, 0.7).unwrap();
//! assert!(hits.neighbors.iter().any(|&(id, _)| id == new_id));
//! ```
//!
//! ### Migrating from `run_algorithm`
//!
//! The original entry point ran one algorithm end to end, rebuilding
//! signatures and the index on every call. It still works, unchanged, as a
//! thin shim over the composable layer:
//!
//! ```
//! use bayeslsh::prelude::*;
//! let data = Preset::Rcv1.load(0.001, 7);
//! let out = run_algorithm(Algorithm::LshBayesLsh, &data, &PipelineConfig::cosine(0.7));
//! assert!(out.total_secs >= 0.0);
//! ```
//!
//! For one batch run the two are equivalent (identical output, same
//! seeds). Switch to [`Searcher`](prelude::Searcher) when you issue more
//! than one operation against the same corpus; note the builder returns
//! typed [`SearchError`](prelude::SearchError)s where the shim panics.
//!
//! ## Hash families
//!
//! Similarity spaces are first-class: a
//! [`FamilyConfig`](prelude::FamilyConfig) names the hash family — signed
//! random projections for **cosine**, minwise hashing for **Jaccard**,
//! p-stable quantized projections (E2LSH) for **L2** proximity
//! (`s = 1/(1 + d)` with bucket width `r`), and an asymmetric
//! norm-augmentation ([`MipsTransform`](prelude::MipsTransform)) that
//! reduces **maximum inner product** search to cosine — and every family
//! exposes its collision-probability curve through
//! [`HashFamily`](prelude::HashFamily), which is exactly what the banding
//! planner and the Bayesian/SPRT verifiers consume. The
//! [`SearcherBuilder`](prelude::SearcherBuilder) presets pick a family in
//! one call, and the `probes` knob turns point queries into **step-wise
//! multi-probe** queries (extra bucket lookups per band, visited in
//! best-first bit-flip order), trading a smaller index for slightly
//! costlier queries:
//!
//! ```
//! use bayeslsh::prelude::*;
//! let data = Preset::Rcv1.load(0.001, 7);
//! let q = data.vector(0).clone();
//!
//! // Cosine with step-wise multi-probe: 3 bucket lookups per band.
//! let searcher = SearcherBuilder::cosine(0.7)
//!     .probes(3)
//!     .build(data.clone())
//!     .unwrap();
//! let out = searcher.query(&q, 0.7).unwrap();
//! assert_eq!(
//!     out.stats.bucket_probes,
//!     3 * searcher.banding_plan().params.l as u64
//! );
//!
//! // L2 proximity: E2LSH quantized projections with bucket width r = 4,
//! // thresholding the proximity s = 1 / (1 + d).
//! let searcher = SearcherBuilder::l2(0.5, 4.0).build(data.clone()).unwrap();
//! let out = searcher.query(&q, 0.5).unwrap();
//! assert!(out.neighbors.iter().any(|&(id, _)| id == 0));
//!
//! // MIPS: fit the norm-augmenting transform once; inner products then
//! // ride the cosine machinery on the augmented corpus.
//! let transform = MipsTransform::fit(&data);
//! let searcher = SearcherBuilder::mips(0.3)
//!     .build(transform.transform_corpus(&data))
//!     .unwrap();
//! let top = searcher
//!     .top_k(&transform.augment_query(&q), 3, &KnnParams::default())
//!     .unwrap();
//! assert!(!top.neighbors.is_empty());
//! ```
//!
//! The deprecated `PipelineConfig::measure` setter still compiles and maps
//! onto `family` (`Measure::L2` gets the default bucket width); new code
//! should set [`PipelineConfig::family`](prelude::PipelineConfig) or use
//! the presets.
//!
//! ## The SPRT verifier
//!
//! Beyond the paper's eight named algorithms, a ninth composition swaps
//! the Bayesian posterior for Wald sequential probability-ratio tests
//! over the same signature pools
//! ([`VerifierKind::Sprt`](prelude::VerifierKind)). No new tuning
//! surface: the pipeline's recall knob ε becomes the SPRT's false-prune
//! bound α (every pair with similarity ≥ t survives pruning with
//! probability ≥ 1 − α), and the precision knob γ becomes the
//! false-accept bound β (a pair with similarity ≤ t − δ is accepted with
//! probability ≤ β, with δ the indifference half-width) — see
//! [`PipelineConfig::sprt`](prelude::PipelineConfig::sprt) and
//! [`SprtConfig`](prelude::SprtConfig). The verifier's early-prune
//! boundary front-loads its α budget, so junk candidates die after a
//! single hash chunk; both it and the Bayesian engines report the cost
//! as `hashes_compared` / `hashes_per_accepted_pair` in their outputs.
//!
//! ```
//! use bayeslsh::prelude::*;
//! let data = Preset::Rcv1.load(0.001, 7);
//! let cfg = PipelineConfig::cosine(0.7);
//! // ε ↦ α (false-prune / recall), γ ↦ β (false-accept / precision).
//! assert_eq!((cfg.sprt().alpha, cfg.sprt().beta), (cfg.epsilon, cfg.gamma));
//!
//! let mut searcher = Searcher::builder(cfg)
//!     .composition(Composition::new(GeneratorKind::LshBanding, VerifierKind::Sprt))
//!     .build(data)
//!     .unwrap();
//! let out = searcher.all_pairs().expect("composition runs");
//! assert!(!out.pairs.is_empty());
//! assert!(out.hashes_per_accepted_pair > 0.0);
//! ```
//!
//! ## Parallelism & determinism
//!
//! Hashing, indexing, candidate generation, and verification all fan out
//! across worker threads; the knob is
//! [`Parallelism`](prelude::Parallelism) on
//! [`PipelineConfig`](prelude::PipelineConfig) /
//! [`SearcherBuilder`](prelude::SearcherBuilder) (`Auto` = the
//! `BAYESLSH_THREADS` environment variable or all cores, resolved once at
//! build). Output is **bit-identical to the serial path** at any thread
//! count — pairs, similarities, and candidate/prune counters — because
//! work splits into deterministic chunks whose results merge in canonical
//! order; see the README's "Parallelism & determinism" section and
//! `tests/parallel_equivalence.rs`.
//!
//! ```
//! use bayeslsh::prelude::*;
//! let data = Preset::Rcv1.load(0.001, 7);
//! let build = |p: Parallelism| {
//!     let mut s = Searcher::builder(PipelineConfig::cosine(0.7))
//!         .algorithm(Algorithm::LshBayesLshLite)
//!         .parallelism(p)
//!         .build(data.clone())
//!         .unwrap();
//!     s.all_pairs().unwrap().pairs
//! };
//! let serial = build(Parallelism::serial());
//! let parallel = build(Parallelism::threads(4));
//! assert_eq!(serial.len(), parallel.len());
//! for (a, b) in serial.iter().zip(&parallel) {
//!     assert_eq!((a.0, a.1, a.2.to_bits()), (b.0, b.1, b.2.to_bits()));
//! }
//! ```
//!
//! ## Persistence
//!
//! A built searcher is a durable artifact:
//! [`Searcher::save`](prelude::Searcher::save) writes a versioned,
//! checksummed binary snapshot of the config, signature pool, banding
//! index, and corpus, and [`Searcher::load`](prelude::Searcher::load)
//! reconstructs a searcher whose batch joins, queries, top-k, and
//! insert-then-query behaviour are **bit-identical** to the saved one —
//! so a fleet of serving workers can cold-load one offline build instead
//! of each re-hashing the corpus. Probe files cheaply with
//! [`SnapshotHeader::read`](prelude::SnapshotHeader::read); corrupt or
//! truncated input yields a typed
//! [`SnapshotError`](prelude::SnapshotError), never a panic.
//!
//! ```
//! use bayeslsh::prelude::*;
//! let data = Preset::Rcv1.load(0.001, 7);
//! let mut built = Searcher::builder(PipelineConfig::cosine(0.7))
//!     .algorithm(Algorithm::LshBayesLshLite)
//!     .build(data)
//!     .unwrap();
//!
//! let mut snapshot = Vec::new();
//! built.save(&mut snapshot).unwrap();
//!
//! let header = SnapshotHeader::read(&snapshot[..]).unwrap();
//! assert_eq!(header.n_vectors as usize, built.len());
//!
//! let mut loaded = Searcher::load(&snapshot[..]).unwrap();
//! let q = built.data().vector(0).clone();
//! let (a, b) = (built.query(&q, 0.7).unwrap(), loaded.query(&q, 0.7).unwrap());
//! assert_eq!(a.neighbors.len(), b.neighbors.len());
//! for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
//!     assert_eq!((x.0, x.1.to_bits()), (y.0, y.1.to_bits()));
//! }
//! ```
//!
//! ## Online serving
//!
//! Every `Searcher` read path — `query`, `top_k`, `all_pairs` — takes
//! `&self`, so any number of threads can share one built index. For live
//! writes under that read traffic,
//! [`ServingSearcher`](prelude::ServingSearcher) adds an epoch model:
//! readers snapshot the published [`Epoch`](prelude::Epoch) (an `Arc`
//! clone — never blocked by the writer), while a writer stages
//! `insert`/`remove`/`compact` batches and `publish()`es them as the next
//! epoch in one atomic swap. Each epoch is bit-identical to a serial
//! application of the same write-log prefix (`tests/serving_stress.rs`
//! pins this under concurrent load), and removals follow tombstone
//! semantics: hidden from queries at the next publish, reclaimed by an
//! explicit compaction that rewrites the banding index and signature pool
//! in place — ids stay stable — after which snapshots save again.
//!
//! ```
//! use bayeslsh::prelude::*;
//! let data = Preset::Rcv1.load(0.001, 7);
//! let searcher = Searcher::builder(PipelineConfig::cosine(0.7))
//!     .algorithm(Algorithm::LshBayesLshLite)
//!     .build(data)
//!     .unwrap();
//! let q = searcher.data().vector(0).clone();
//! let serving = ServingSearcher::new(searcher);
//!
//! // Readers pin an epoch; staged writes stay invisible until publish.
//! let epoch = serving.epoch();
//! serving.remove(0).unwrap();
//! assert!(epoch.searcher().query(&q, 0.7).unwrap().neighbors.iter().any(|&(id, _)| id == 0));
//!
//! let next = serving.publish();
//! assert!(next.searcher().query(&q, 0.7).unwrap().neighbors.iter().all(|&(id, _)| id != 0));
//!
//! // Reclaim tombstones (ids stay stable), then snapshots save again.
//! serving.compact();
//! let compacted = serving.publish();
//! let mut snapshot = Vec::new();
//! compacted.searcher().save(&mut snapshot).unwrap();
//! ```
//!
//! ## Sharded serving
//!
//! The snapshot format scales out: a [`ShardBuilder`](prelude::ShardBuilder)
//! partitions a corpus into N disjoint shards (a replayable
//! [`PartitionFn`](prelude::PartitionFn) recorded in a checksummed
//! [`ShardManifest`](prelude::ShardManifest)), builds each shard's searcher
//! in parallel, and saves them as independent snapshots; a
//! [`ShardedSearcher`](prelude::ShardedSearcher) then serves batch joins,
//! threshold queries, top-k, and inserts by scatter-gather — results
//! **bit-identical** to a single `Searcher` over the whole corpus at any
//! shard count × any thread budget — and `reload()` hot-swaps freshly
//! built snapshots under in-flight queries. Manifest or snapshot damage
//! surfaces as a typed [`ShardError`](prelude::ShardError), never a panic
//! or a silent mis-merge.
//!
//! ```
//! use bayeslsh::prelude::*;
//! let data = Preset::Rcv1.load(0.001, 7);
//! let dir = std::env::temp_dir().join(format!("bayeslsh-doc-shards-{}", std::process::id()));
//! ShardBuilder::new(PipelineConfig::cosine(0.7))
//!     .algorithm(Algorithm::LshBayesLshLite)
//!     .shards(3)
//!     .build_to_dir(&data, &dir)
//!     .unwrap();
//! let sharded = ShardedSearcher::open(&dir.join(MANIFEST_FILE)).unwrap();
//!
//! let mut single = Searcher::builder(PipelineConfig::cosine(0.7))
//!     .algorithm(Algorithm::LshBayesLshLite)
//!     .build(data.clone())
//!     .unwrap();
//! let q = data.vector(0);
//! let (a, b) = (sharded.query(q, 0.7).unwrap(), single.query(q, 0.7).unwrap());
//! assert_eq!(a.neighbors.len(), b.neighbors.len());
//! for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
//!     assert_eq!((x.0, x.1.to_bits()), (y.0, y.1.to_bits()));
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`numeric`] | special functions, Beta/Binomial distributions, RNG |
//! | [`sparse`] | sparse vectors, exact similarities, datasets, tf-idf |
//! | [`lsh`] | hash families: minwise, signed random projections, E2LSH, MIPS |
//! | [`candgen`] | AllPairs, LSH banding index, PPJoin+ |
//! | [`core`] | BayesLSH engines, compositions, `Searcher`, pipelines |
//! | [`shard`] | shard builder, manifest, scatter-gather serving router |
//! | [`datasets`] | synthetic corpora mimicking the paper's six datasets |
//!
//! The API most users need is re-exported from [`prelude`].

pub use bayeslsh_candgen as candgen;
pub use bayeslsh_core as core;
pub use bayeslsh_datasets as datasets;
pub use bayeslsh_lsh as lsh;
pub use bayeslsh_numeric as numeric;
pub use bayeslsh_shard as shard;
pub use bayeslsh_sparse as sparse;

/// The one-import API surface.
pub mod prelude {
    pub use bayeslsh_candgen::{
        all_pairs_cosine, all_pairs_jaccard, lsh_candidates_bits, lsh_candidates_ints,
        ppjoin_binary_cosine, ppjoin_jaccard, BandingIndex, BandingParams, BandingPlan,
    };
    pub use bayeslsh_core::pipeline::ground_truth;
    pub use bayeslsh_core::{
        bayes_verify, bayes_verify_lite, estimate_errors, mle_verify, recall_against,
        run_algorithm, run_composition, Algorithm, BayesLshConfig, BbitJaccardModel,
        CandidateGenerator, Composition, CompositionOutput, ConfigDiff, CosineModel, EngineStats,
        Epoch, ErrorStats, FamilyModel, GeneratorKind, HashMode, JaccardModel, KnnIndex, KnnParams,
        KnnStats, LiteConfig, MinMatchTable, PipelineConfig, PosteriorModel, PriorChoice,
        QueryOutput, QueryStats, RunOutput, SearchContext, SearchError, Searcher, SearcherBuilder,
        ServingSearcher, SigPool, SnapshotError, SnapshotHeader, SprtConfig, SprtTable, TopKOutput,
        Verifier, VerifierKind, SNAPSHOT_FORMAT_VERSION,
    };
    pub use bayeslsh_core::{par_sprt_verify, sprt_verify};
    pub use bayeslsh_datasets::{generate, CorpusConfig, Preset};
    pub use bayeslsh_lsh::{
        bbit_collision_prob, bbit_to_jaccard, cos_to_r, e2lsh_collision, e2lsh_similarity_at,
        r_to_cos, BbitSignatures, BitSignatures, E2lshHasher, FamilyConfig, HashFamily,
        IntSignatures, Measure, MinHasher, MipsTransform, ProjSignatures, SignaturePool, SrpHasher,
    };
    pub use bayeslsh_numeric::{BetaDist, Binomial, Parallelism, Xoshiro256};
    pub use bayeslsh_shard::{
        LoadPolicy, PartitionFn, ShardBuilder, ShardError, ShardManifest, ShardedSearcher,
        MANIFEST_FILE,
    };
    pub use bayeslsh_sparse::{
        cosine, dot, jaccard, l2_similarity, overlap, Dataset, SparseVector,
    };
}
