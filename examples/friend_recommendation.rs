//! Friend recommendation on a social graph — link prediction via all-pairs
//! similarity over adjacency vectors (paper Section 1 / the Orkut
//! dataset).
//!
//! Each user is the binary set of their friends; users whose friend sets
//! have Jaccard similarity above a threshold are "structurally equivalent",
//! and each one's friends are recommendation candidates for the other.
//!
//! ```text
//! cargo run --release --example friend_recommendation
//! ```

use bayeslsh::prelude::*;

fn main() {
    // An Orkut-like friendship graph (binary adjacency, heavy-tailed
    // degrees).
    let data = Preset::Orkut.load_binary(0.0006, 33);
    let stats = data.stats();
    println!(
        "graph: {} users, avg degree {:.0}, max degree {}",
        stats.n_vectors, stats.avg_len, stats.max_len
    );

    // Find all user pairs with Jaccard >= 0.4 over their friend sets.
    let threshold = 0.4;
    let cfg = PipelineConfig::jaccard(threshold);
    let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
    println!(
        "\nLSH+BayesLSH: {} candidates -> {} similar user pairs in {:.2}s",
        out.candidates,
        out.pairs.len(),
        out.total_secs
    );

    // Pick the user with the most similar peers and recommend the friends
    // of those peers that the user lacks.
    let mut peer_count = vec![0usize; data.len()];
    for &(a, b, _) in &out.pairs {
        peer_count[a as usize] += 1;
        peer_count[b as usize] += 1;
    }
    let user = peer_count
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| i as u32)
        .unwrap();
    println!(
        "\nuser {user} has {} structurally similar peers; their friends:",
        peer_count[user as usize]
    );

    let friends: std::collections::HashSet<u32> =
        data.vector(user).indices().iter().copied().collect();
    let mut votes: std::collections::HashMap<u32, (usize, f64)> = Default::default();
    for &(a, b, s) in &out.pairs {
        let peer = if a == user {
            b
        } else if b == user {
            a
        } else {
            continue;
        };
        for &f in data.vector(peer).indices() {
            if f != user && !friends.contains(&f) {
                let e = votes.entry(f).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += s;
            }
        }
    }
    let mut ranked: Vec<(u32, usize, f64)> =
        votes.into_iter().map(|(f, (n, w))| (f, n, w)).collect();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    println!("top recommendations (candidate, peer votes, similarity-weighted score):");
    for (f, n, w) in ranked.iter().take(5) {
        println!("  user {f:>5}: {n} votes, score {w:.2}");
    }
    if ranked.is_empty() {
        println!("  (none — the chosen user's peers add no new friends)");
    }

    // Quality check against the exact join.
    let truth = ground_truth(&data, Measure::Jaccard, threshold);
    println!(
        "\nrecall vs exact all-pairs join: {:.1}% of {} pairs",
        100.0 * recall_against(&truth, &out.pairs),
        truth.len()
    );
}
