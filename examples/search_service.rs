//! A miniature similarity-search service: one standing `Searcher` answers
//! a stream of point queries, absorbs live inserts, and serves top-k —
//! the regime the build-once/query-many API is designed for.
//!
//! ```text
//! cargo run --release --example search_service
//! ```

use bayeslsh::prelude::*;

fn main() {
    let threshold = 0.7;
    let corpus = Preset::Rcv1.load(/* scale */ 0.002, /* seed */ 11);
    let n = corpus.len();

    // ---- Build phase: pay for hashing and indexing exactly once. ----
    // `Parallelism::Auto` (also the default) fans hashing, indexing, and
    // verification across the available cores — honoring BAYESLSH_THREADS
    // when set — with output bit-identical to `Parallelism::serial()`.
    let t0 = std::time::Instant::now();
    let mut searcher = SearcherBuilder::cosine(threshold)
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(Parallelism::Auto)
        .build(corpus)
        .expect("valid config");
    let build_secs = t0.elapsed().as_secs_f64();
    let built_hashes = searcher.hash_count();
    println!(
        "built searcher over {n} vectors in {build_secs:.2}s: \
         {built_hashes} signature hashes, {} bands, {} worker thread(s)",
        searcher.banding_plan().params.l,
        searcher.threads()
    );

    // ---- Serve phase: a stream of threshold queries. ----
    // Queries are noisy copies of corpus vectors, like near-duplicate
    // lookups arriving at a service.
    let mut rng = Xoshiro256::seed_from_u64(99);
    let queries: Vec<(u32, SparseVector)> = (0..n as u32)
        .step_by(7)
        .map(|id| {
            let v = searcher.data().vector(id);
            let kept: Vec<(u32, f32)> = v
                .iter()
                .filter(|_| rng.next_bool(0.9)) // drop ~10% of terms
                .collect();
            (id, SparseVector::from_pairs(kept))
        })
        .collect();

    let t1 = std::time::Instant::now();
    let (mut answered, mut found_origin, mut candidates, mut exact) = (0u64, 0u64, 0u64, 0u64);
    for (origin, q) in &queries {
        let out = searcher.query(q, threshold).expect("in-range threshold");
        answered += 1;
        candidates += out.stats.candidates;
        exact += out.stats.exact;
        if out.neighbors.iter().any(|&(id, _)| id == *origin) {
            found_origin += 1;
        }
    }
    let serve_secs = t1.elapsed().as_secs_f64();
    println!(
        "served {answered} queries in {serve_secs:.2}s \
         ({:.2}ms avg; {:.1} candidates and {:.1} exact checks per query)",
        1000.0 * serve_secs / answered as f64,
        candidates as f64 / answered as f64,
        exact as f64 / answered as f64,
    );
    println!("recovered the noisy query's origin vector in {found_origin}/{answered} cases");

    // The whole point of build-once/query-many: the query stream did not
    // re-hash the corpus.
    assert_eq!(searcher.hash_count(), built_hashes);
    println!(
        "corpus hashes after serving: {} (unchanged)",
        searcher.hash_count()
    );

    // ---- Live inserts: extend the pool and index in place. ----
    let planted = searcher.data().vector(3).clone();
    let new_id = searcher
        .insert(planted.clone())
        .expect("fits indexed space");
    let out = searcher.query(&planted, threshold).unwrap();
    assert!(out.neighbors.iter().any(|&(id, _)| id == new_id));
    println!(
        "\ninserted a near-duplicate as id {new_id}; \
         a follow-up query finds it at similarity {:.3}",
        out.neighbors
            .iter()
            .find(|&&(id, _)| id == new_id)
            .map(|&(_, s)| s)
            .unwrap()
    );

    // ---- Top-k on the same index. ----
    let q = searcher.data().vector(0).clone();
    let top = searcher.top_k(&q, 5, &KnnParams::default()).unwrap();
    println!("\ntop-5 neighbours of vector 0:");
    for (id, s) in &top.neighbors {
        println!("  id {id:>4}  cosine {s:.3}");
    }
    println!(
        "({} candidates, {} pruned by the posterior test, {} exact computations)",
        top.stats.candidates, top.stats.pruned, top.stats.exact
    );
}
