//! Running BayesLSH on your own data: the plain-text corpus format.
//!
//! Vectors are stored one per line as `index:weight` pairs (0-based,
//! whitespace-separated, `#` comments) — the SVM-light convention minus the
//! label. This example writes a corpus, reads it back, and runs the full
//! pipeline, which is exactly what you would do with a real dataset.
//!
//! ```text
//! cargo run --release --example custom_corpus
//! ```

use bayeslsh::datasets::io;
use bayeslsh::prelude::*;
use bayeslsh::sparse::tfidf::tfidf_transform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend this is your data: write a small corpus to disk.
    let path = std::env::temp_dir().join("bayeslsh_custom_corpus.txt");
    {
        let demo = generate(&CorpusConfig {
            n_vectors: 500,
            dim: 5_000,
            avg_len: 40,
            seed: 99,
            ..CorpusConfig::default()
        });
        io::save_path(&demo, &path)?;
        println!("wrote {} vectors to {}", demo.len(), path.display());
    }

    // Load raw term counts, apply the standard preprocessing.
    let raw = io::load_path(&path)?;
    let data = tfidf_transform(&raw);
    println!(
        "loaded {} vectors ({} dims, {} non-zeros)",
        data.len(),
        data.stats().dim,
        data.stats().nnz
    );

    // Run two pipelines and cross-check them.
    let t = 0.6;
    let cfg = PipelineConfig::cosine(t);
    let exact = run_algorithm(Algorithm::AllPairs, &data, &cfg);
    let bayes = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
    println!(
        "\nAllPairs (exact):   {} pairs in {:.3}s",
        exact.pairs.len(),
        exact.total_secs
    );
    println!(
        "AP+BayesLSH:        {} pairs in {:.3}s (recall {:.1}%)",
        bayes.pairs.len(),
        bayes.total_secs,
        100.0 * recall_against(&exact.pairs, &bayes.pairs)
    );

    // The low-level API: verify your own candidate list against any
    // threshold with direct control of the signature pool.
    let candidates: Vec<(u32, u32)> = (0..20).map(|i| (i, i + 1)).collect();
    let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 2024), data.len());
    let (pairs, stats) = bayes_verify(
        &data,
        &mut pool,
        &CosineModel::new(),
        &candidates,
        &BayesLshConfig::cosine(t),
    );
    println!(
        "\nlow-level bayes_verify on {} hand-picked pairs: {} kept, {} pruned",
        candidates.len(),
        pairs.len(),
        stats.pruned
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
