//! k-nearest-neighbour search with Bayesian candidate pruning — the
//! paper's future-work item, implemented: the current k-th best similarity
//! acts as a rising threshold, and candidates whose posterior chance of
//! beating it drops below ε are discarded after a few hash chunks.
//!
//! Served through the unified `Searcher` API: the same standing index that
//! answers threshold queries and batch joins also answers top-k.
//!
//! ```text
//! cargo run --release --example nearest_neighbors
//! ```

use bayeslsh::prelude::*;

fn main() {
    // A WikiWords-like corpus; queries are held-out members of its planted
    // clusters, so true neighbours exist.
    let data = Preset::WikiWords100K.load(0.004, 77);
    println!("corpus: {} docs, {} dims", data.len(), data.stats().dim);

    // Index once, query many times. The banding comes from the config's
    // threshold: here "similarities below 0.5 are uninteresting".
    let cfg = PipelineConfig::cosine(0.5);
    let build_start = std::time::Instant::now();
    let searcher = Searcher::builder(cfg)
        .algorithm(Algorithm::Lsh)
        .build(data)
        .expect("valid config");
    let bands = searcher.banding_plan().params;
    println!(
        "index: {} bands x {} bits built in {:.2}s",
        bands.l,
        bands.k,
        build_start.elapsed().as_secs_f64()
    );

    let k = 5;
    let params = KnnParams::default();
    let mut total_stats = KnnStats::default();
    let mut recall_hits = 0usize;
    let mut recall_total = 0usize;

    for qid in [0u32, 17, 101, 333] {
        let q = searcher.data().vector(qid).clone();
        let out = searcher.top_k(&q, k + 1, &params).expect("valid params");
        let (neighbours, stats) = (out.neighbors, out.stats);
        println!(
            "\nquery {qid}: {} candidates, {} pruned, {} exact computations",
            stats.candidates, stats.pruned, stats.exact
        );
        for &(id, s) in neighbours.iter().take(4) {
            let marker = if id == qid { " (self)" } else { "" };
            println!("  neighbour {id:>5}  cosine {s:.3}{marker}");
        }
        total_stats.candidates += stats.candidates;
        total_stats.pruned += stats.pruned;
        total_stats.exact += stats.exact;

        // Compare against the exact top-k (excluding self).
        let mut brute: Vec<(u32, f64)> = searcher
            .data()
            .iter()
            .filter(|&(id, _)| id != qid)
            .map(|(id, v)| (id, cosine(&q, v)))
            .collect();
        brute.sort_by(|a, b| b.1.total_cmp(&a.1));
        let got: std::collections::HashSet<u32> = neighbours
            .iter()
            .filter(|&&(id, _)| id != qid)
            .map(|&(id, _)| id)
            .collect();
        for &(id, _) in brute.iter().take(k) {
            recall_total += 1;
            if got.contains(&id) {
                recall_hits += 1;
            }
        }
    }

    println!(
        "\noverall: recall@{k} = {:.0}%; pruning avoided {} of {} exact computations",
        100.0 * recall_hits as f64 / recall_total as f64,
        total_stats.pruned,
        total_stats.candidates
    );
}
