//! Quickstart: build a `Searcher` once, then serve a batch join and point
//! queries against the same standing signatures and index.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bayeslsh::prelude::*;

fn main() {
    // A scaled-down RCV1-like corpus: tf-idf weighted sparse vectors with
    // planted near-duplicate clusters.
    let data = Preset::Rcv1.load(/* scale */ 0.002, /* seed */ 7);
    let stats = data.stats();
    println!(
        "corpus: {} vectors, {} dims, avg {:.0} non-zeros",
        stats.n_vectors, stats.dim, stats.avg_len
    );

    // Build once: hash signatures and bucket the LSH banding index. The
    // algorithm picks the composition — LSH banding candidates verified by
    // BayesLSH (incremental pruning + concentration-controlled estimates).
    let threshold = 0.7;
    let searcher = Searcher::builder(PipelineConfig::cosine(threshold))
        .algorithm(Algorithm::LshBayesLsh)
        .build(data)
        .expect("valid config");
    let plan = searcher.banding_plan();
    println!(
        "index: {} bands x {} bits, target miss rate {:.3} (achieved {:.3}{})",
        plan.params.l,
        plan.params.k,
        plan.requested_fnr,
        plan.achieved_fnr,
        if plan.clamped { ", clamped!" } else { "" }
    );

    // Batch: all pairs with cosine >= 0.7.
    let out = searcher.all_pairs().expect("composition runs");
    println!(
        "\n{}: {} candidates -> {} pairs in {:.2}s ({:.2}s candgen, {:.2}s verify)",
        out.composition,
        out.candidates,
        out.pairs.len(),
        out.total_secs,
        out.candgen_secs,
        out.verify_secs
    );
    if let Some(engine) = &out.engine {
        println!(
            "pruned {} of {} candidates; {} hash comparisons; cache {} hits / {} misses",
            engine.pruned,
            engine.input_pairs,
            engine.hash_comparisons,
            engine.cache_hits,
            engine.cache_misses
        );
    }

    // Show the five most similar pairs.
    let mut ranked = out.pairs.clone();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    println!("\ntop pairs (estimated similarity):");
    for (a, b, s) in ranked.iter().take(5) {
        let exact = cosine(searcher.data().vector(*a), searcher.data().vector(*b));
        println!("  ({a:>4}, {b:>4})  estimate {s:.3}  exact {exact:.3}");
    }

    // Point queries reuse the standing signatures — zero corpus re-hashing.
    let hashed_once = searcher.hash_count();
    let q = searcher.data().vector(0).clone();
    let hits = searcher.query(&q, threshold).expect("in-range threshold");
    println!(
        "\npoint query for vector 0: {} candidates -> {} neighbors \
         (corpus hashes before/after: {hashed_once}/{})",
        hits.stats.candidates,
        hits.neighbors.len(),
        searcher.hash_count()
    );

    // Sanity: compare the batch output against the exact result set.
    let truth = ground_truth(searcher.data(), Measure::Cosine, threshold);
    let recall = recall_against(&truth, &out.pairs);
    let err = estimate_errors(&out.pairs, searcher.data(), Measure::Cosine, 0.05);
    println!(
        "\nvs exact: recall {:.1}% of {} true pairs; {:.1}% of estimates off by > 0.05",
        100.0 * recall,
        truth.len(),
        100.0 * err.frac_above
    );
}
