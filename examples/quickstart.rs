//! Quickstart: find all similar pairs in a corpus with LSH+BayesLSH.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bayeslsh::prelude::*;

fn main() {
    // A scaled-down RCV1-like corpus: tf-idf weighted sparse vectors with
    // planted near-duplicate clusters.
    let data = Preset::Rcv1.load(/* scale */ 0.002, /* seed */ 7);
    let stats = data.stats();
    println!(
        "corpus: {} vectors, {} dims, avg {:.0} non-zeros",
        stats.n_vectors, stats.dim, stats.avg_len
    );

    // All pairs with cosine >= 0.7. BayesLSH verifies LSH candidates by
    // comparing hashes incrementally, pruning hopeless pairs after a few
    // chunks and emitting concentration-controlled estimates.
    let threshold = 0.7;
    let cfg = PipelineConfig::cosine(threshold);
    let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);

    println!(
        "\nLSH+BayesLSH: {} candidates -> {} pairs in {:.2}s ({:.2}s candgen, {:.2}s verify)",
        out.candidates,
        out.pairs.len(),
        out.total_secs,
        out.candgen_secs,
        out.verify_secs
    );
    if let Some(engine) = &out.engine {
        println!(
            "pruned {} of {} candidates; {} hash comparisons; cache {} hits / {} misses",
            engine.pruned,
            engine.input_pairs,
            engine.hash_comparisons,
            engine.cache_hits,
            engine.cache_misses
        );
    }

    // Show the five most similar pairs.
    let mut ranked = out.pairs.clone();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    println!("\ntop pairs (estimated similarity):");
    for (a, b, s) in ranked.iter().take(5) {
        let exact = cosine(data.vector(*a), data.vector(*b));
        println!("  ({a:>4}, {b:>4})  estimate {s:.3}  exact {exact:.3}");
    }

    // Sanity: compare against the exact result set.
    let truth = ground_truth(&data, Measure::Cosine, threshold);
    let recall = recall_against(&truth, &out.pairs);
    let err = estimate_errors(&out.pairs, &data, Measure::Cosine, 0.05);
    println!(
        "\nvs exact: recall {:.1}% of {} true pairs; {:.1}% of estimates off by > 0.05",
        100.0 * recall,
        truth.len(),
        100.0 * err.frac_above
    );
}
