//! The BayesLSH tuning playbook: what ε, δ and γ actually buy you.
//!
//! The paper's selling point is that these three knobs *directly* control
//! output quality — no "number of hashes" to tune. This example sweeps each
//! knob on one dataset and prints the measured recall / error / time so you
//! can see the contracts holding.
//!
//! ```text
//! cargo run --release --example tuning_playbook
//! ```

use bayeslsh::prelude::*;

fn main() {
    let data = Preset::WikiWords100K.load(0.003, 55);
    let t = 0.7;
    let truth = ground_truth(&data, Measure::Cosine, t);
    println!(
        "dataset: {} docs; exact result at cosine >= {t}: {} pairs\n",
        data.len(),
        truth.len()
    );

    println!("-- recall knob: epsilon (prune when Pr[S >= t] < eps) --");
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "epsilon", "recall", "output", "time"
    );
    for eps in [0.01, 0.05, 0.10, 0.20] {
        let mut cfg = PipelineConfig::cosine(t);
        cfg.epsilon = eps;
        let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
        println!(
            "{:>8.2} {:>9.1}% {:>10} {:>8.2}s",
            eps,
            100.0 * recall_against(&truth, &out.pairs),
            out.pairs.len(),
            out.total_secs
        );
    }

    println!("\n-- accuracy knob: delta (estimate within delta of truth) --");
    println!(
        "{:>8} {:>11} {:>12} {:>9}",
        "delta", "mean err", "hash cmps", "time"
    );
    for delta in [0.01, 0.03, 0.05, 0.09] {
        let mut cfg = PipelineConfig::cosine(t);
        cfg.delta = delta;
        let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
        let err = estimate_errors(&out.pairs, &data, Measure::Cosine, delta);
        println!(
            "{:>8.2} {:>11.4} {:>12} {:>8.2}s",
            delta,
            err.mean_abs,
            out.engine.as_ref().unwrap().hash_comparisons,
            out.total_secs
        );
    }

    println!("\n-- confidence knob: gamma (Pr[error > delta] < gamma) --");
    println!("{:>8} {:>14} {:>9}", "gamma", "err > 0.05", "time");
    for gamma in [0.01, 0.03, 0.05, 0.09] {
        let mut cfg = PipelineConfig::cosine(t);
        cfg.gamma = gamma;
        let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
        let err = estimate_errors(&out.pairs, &data, Measure::Cosine, 0.05);
        println!(
            "{:>8.2} {:>13.1}% {:>8.2}s",
            gamma,
            100.0 * err.frac_above,
            out.total_secs
        );
    }

    println!("\nreference points:");
    for algo in [Algorithm::Lsh, Algorithm::LshApprox, Algorithm::AllPairs] {
        let out = run_algorithm(algo, &data, &PipelineConfig::cosine(t));
        println!(
            "  {:<12} {:>8.2}s  recall {:>5.1}%",
            algo.name(),
            out.total_secs,
            100.0 * recall_against(&truth, &out.pairs)
        );
    }
}
