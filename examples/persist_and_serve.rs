//! Persist a built index, then serve from the snapshot: the offline
//! build-once / online load-many split a production deployment uses. One
//! process pays for hashing and indexing and writes a versioned snapshot;
//! every serving worker cold-loads it — bit-identical behaviour, none of
//! the build cost — probes the header first, and keeps absorbing inserts.
//!
//! ```text
//! cargo run --release --example persist_and_serve
//! ```

use std::io::{BufReader, BufWriter};
use std::time::Instant;

use bayeslsh::prelude::*;

fn main() {
    let threshold = 0.7;
    let path = std::env::temp_dir().join("bayeslsh_example.snap");

    // ---- Offline: build once, persist the artifact. ----
    let corpus = Preset::Rcv1.load(/* scale */ 0.002, /* seed */ 11);
    let n = corpus.len();
    let t0 = Instant::now();
    let builder_side = Searcher::builder(PipelineConfig::cosine(threshold))
        .algorithm(Algorithm::LshBayesLshLite)
        .build(corpus)
        .expect("valid config");
    let build_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let file = std::fs::File::create(&path).expect("create snapshot");
    builder_side.save(BufWriter::new(file)).expect("serialize");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "offline: built {n} vectors in {build_secs:.2}s, saved {bytes} bytes in {:.0}ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // ---- Online: probe cheaply, then cold-load the standing index. ----
    let file = std::fs::File::open(&path).expect("open snapshot");
    let header = SnapshotHeader::read(BufReader::new(file)).expect("probe");
    println!(
        "probe: format v{}, {:?}, {} vectors, {} corpus hashes banked",
        header.format_version, header.measure, header.n_vectors, header.total_hashes
    );

    let t0 = Instant::now();
    let file = std::fs::File::open(&path).expect("open snapshot");
    let mut server = Searcher::load(BufReader::new(file)).expect("snapshot is intact");
    println!(
        "online: cold-loaded in {:.0}ms — no corpus re-hashing ({} hashes restored)",
        t0.elapsed().as_secs_f64() * 1e3,
        server.hash_count()
    );

    // Queries hit the restored index directly.
    let q = server.data().vector(0).clone();
    let hits = server.query(&q, threshold).expect("in-range threshold");
    println!(
        "query: {} neighbours above {threshold} ({} candidates probed)",
        hits.neighbors.len(),
        hits.stats.candidates
    );
    assert!(hits.neighbors.iter().any(|&(id, _)| id == 0));

    // The loaded searcher keeps growing: the rebuilt hash-function banks
    // hash inserts exactly as the original would have.
    let planted = q.clone();
    let id = server.insert(planted).expect("fits the indexed space");
    let hits = server.query(&q, threshold).expect("query after insert");
    assert!(hits.neighbors.iter().any(|&(got, _)| got == id));
    println!("insert: vector {id} indexed and immediately findable");

    // Corruption is detected, not served: flip one byte and reload.
    let mut evil = std::fs::read(&path).expect("reread");
    let mid = evil.len() / 2;
    evil[mid] ^= 0x01;
    match Searcher::load(&evil[..]) {
        Err(e) => println!("tamper check: {e}"),
        Ok(_) => unreachable!("checksummed snapshot cannot load corrupted"),
    }

    let _ = std::fs::remove_file(&path);
}
