//! Near-duplicate document detection — the classic all-pairs use case
//! (web crawling, news wire dedup; paper Section 1).
//!
//! Uses AllPairs candidates + BayesLSH-Lite: Bayesian pruning kills the
//! false positives cheaply, and the few survivors get *exact* similarities
//! — the right trade when near-duplicate decisions feed deletion logic.
//!
//! ```text
//! cargo run --release --example near_duplicates
//! ```

use bayeslsh::prelude::*;

fn main() {
    // A WikiWords-like text corpus with mutation-planted near-duplicates.
    let mut config = Preset::WikiWords100K.config(0.004, 21);
    config.mutation_rate = 0.05; // tighter clusters: true near-dupes
    let raw = generate(&config);
    let data = bayeslsh::sparse::tfidf::tfidf_transform(&raw);
    println!(
        "corpus: {} docs, {} terms, avg {:.0} terms/doc",
        data.len(),
        data.stats().dim,
        data.stats().avg_len
    );

    // Near-duplicate threshold: cosine 0.9.
    let threshold = 0.9;
    let cfg = PipelineConfig::cosine(threshold);
    let out = run_algorithm(Algorithm::ApBayesLshLite, &data, &cfg);
    println!(
        "\nAP+BayesLSH-Lite: {} candidates -> {} near-duplicate pairs in {:.2}s",
        out.candidates,
        out.pairs.len(),
        out.total_secs
    );
    let engine = out.engine.as_ref().unwrap();
    println!(
        "Bayesian pruning removed {:.2}% of candidates before any exact computation \
         ({} exact similarity computations instead of {})",
        100.0 * engine.pruned as f64 / engine.input_pairs.max(1) as f64,
        engine.exact_verifications,
        engine.input_pairs
    );

    // Group pairs into duplicate clusters with a union-find pass.
    let mut parent: Vec<u32> = (0..data.len() as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for &(a, b, _) in &out.pairs {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra as usize] = rb;
        }
    }
    let mut clusters: std::collections::HashMap<u32, Vec<u32>> = Default::default();
    for i in 0..data.len() as u32 {
        let r = find(&mut parent, i);
        clusters.entry(r).or_default().push(i);
    }
    let mut sizes: Vec<usize> = clusters
        .values()
        .map(|c| c.len())
        .filter(|&n| n > 1)
        .collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\nduplicate clusters: {} (sizes of the largest: {:?})",
        sizes.len(),
        &sizes[..sizes.len().min(8)]
    );

    // Every reported pair is exact — BayesLSH-Lite guarantees no false
    // positives.
    let fp = out
        .pairs
        .iter()
        .filter(|&&(a, b, _)| cosine(data.vector(a), data.vector(b)) < threshold)
        .count();
    println!("false positives among reported pairs: {fp}");
    assert_eq!(fp, 0);
}
