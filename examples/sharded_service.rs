//! Shard a corpus, serve it by scatter-gather, hot-swap a rebuild: the
//! scale-out deployment shape. One offline builder partitions the corpus
//! into independent shard snapshots plus a manifest; a serving node opens
//! the manifest and answers queries with results bit-identical to a
//! single index over the whole corpus; and when a fresh build lands on
//! disk, `reload()` swaps it in under live traffic.
//!
//! ```text
//! cargo run --release --example sharded_service
//! ```

use std::time::Instant;

use bayeslsh::prelude::*;

fn main() {
    let threshold = 0.7;
    let dir = std::env::temp_dir().join(format!("bayeslsh_sharded_{}", std::process::id()));
    let cfg = PipelineConfig::cosine(threshold);

    // ---- Offline: partition, build every shard, persist the set. ----
    let corpus = Preset::Rcv1.load(/* scale */ 0.002, /* seed */ 11);
    let n = corpus.len();
    let t0 = Instant::now();
    let manifest = ShardBuilder::new(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(4)
        .partition(PartitionFn::Hashed { seed: 11 })
        .build_to_dir(&corpus, &dir)
        .expect("valid config and writable directory");
    println!(
        "offline: built {n} vectors as {} shards in {:.2}s (sizes: {})",
        manifest.shard_count(),
        t0.elapsed().as_secs_f64(),
        manifest
            .shards
            .iter()
            .map(|s| s.n_vectors.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    );

    // ---- Online: open the manifest, serve by scatter-gather. ----
    let manifest_path = dir.join(MANIFEST_FILE);
    let t0 = Instant::now();
    let server = ShardedSearcher::open(&manifest_path).expect("shard set is intact");
    println!(
        "online: opened {} shards in {:.0}ms (generation {})",
        server.shard_count(),
        t0.elapsed().as_secs_f64() * 1e3,
        server.generation().ordinal(),
    );

    // Scatter-gather answers are bit-identical to a single index.
    let single = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .build(corpus.clone())
        .expect("valid config");
    let q = corpus.vector(0).clone();
    let scattered = server.query(&q, threshold).expect("in-range threshold");
    let direct = single.query(&q, threshold).expect("in-range threshold");
    assert_eq!(scattered.neighbors.len(), direct.neighbors.len());
    for (a, b) in scattered.neighbors.iter().zip(&direct.neighbors) {
        assert_eq!((a.0, a.1.to_bits()), (b.0, b.1.to_bits()));
    }
    println!(
        "query: {} neighbours above {threshold} — bit-identical to the single index",
        scattered.neighbors.len()
    );

    // Inserts route through the manifest's partition function and get the
    // same global ids a single index would assign.
    let id = server.insert(q.clone()).expect("fits the indexed space");
    let hits = server.query(&q, threshold).expect("query after insert");
    assert!(hits.neighbors.iter().any(|&(got, _)| got == id));
    println!("insert: vector {id} routed to its shard and immediately findable");

    // ---- Hot swap: a new build lands on disk; reload under traffic. ----
    let fresh = Preset::Rcv1.load(0.002, /* new seed */ 12);
    ShardBuilder::new(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(6)
        .partition(PartitionFn::Hashed { seed: 12 })
        .build_to_dir(&fresh, &dir)
        .expect("rebuild the shard set in place");

    // A request in flight keeps its generation across the swap.
    let in_flight = server.generation();
    let generation = server.reload().expect("fresh shard set is intact");
    println!(
        "reload: now serving generation {generation} with {} shards; the in-flight request \
         still holds generation {}",
        server.shard_count(),
        in_flight.ordinal(),
    );
    assert_eq!(in_flight.ordinal() + 1, generation);

    // New queries run against the swapped-in corpus.
    let q = fresh.vector(0).clone();
    let hits = server
        .query(&q, threshold)
        .expect("served by the new generation");
    println!(
        "query after swap: {} neighbours from the new corpus",
        hits.neighbors.len()
    );

    // Damage is refused at reload, and the serving set stays up.
    let mut evil = std::fs::read(&manifest_path).expect("reread manifest");
    let last = evil.len() - 1;
    evil[last] ^= 0x01;
    std::fs::write(&manifest_path, &evil).expect("rewrite manifest");
    match server.reload() {
        Err(e) => println!("tamper check: {e}"),
        Ok(_) => unreachable!("checksummed manifest cannot load corrupted"),
    }
    assert_eq!(server.generation().ordinal(), generation);
    println!("still serving generation {generation} after the failed reload");

    let _ = std::fs::remove_dir_all(&dir);
}
